//! Adversarial nodes and attack scenarios: the ReDAN-style threat
//! model the paper's protocols face in the wild.
//!
//! Three attacker archetypes run *inside* the deterministic simulation,
//! scripted or searched, never special-cased by the engine:
//!
//! - [`FloodBot`] — a compromised host behind the victim's NAT opening
//!   mappings from fresh source ports in scripted bursts, exhausting a
//!   capped translation table (§3.4's mappings are a finite resource).
//! - [`SpoofBot`] — an off-path public node emitting packets with
//!   forged source headers on a script: blind TCP RSTs against punched
//!   §4 sessions, and rogue server-to-server frames against a fleet.
//! - [`AbuseBot`] — a public client abusing the §3.1 rendezvous
//!   control plane: registration squatting storms and introduction
//!   floods against the server's capped tables.
//!
//! Each attack pairs with a defense behind a config knob defaulting to
//! paper-faithful **off** (`punch_nat` quotas and fair eviction,
//! `punch_transport` RFC 5961-style RST validation, `punch_rendezvous`
//! protect-active eviction / token-bucket rate limiting / fleet
//! authentication). The [`run_mapping_flood`], [`run_rst_inject`],
//! [`run_reg_squat`] and [`run_intro_forgery`] scenario runners measure
//! the victim's view — punch success, session deaths, recovery latency
//! — with the defense off and on, and feed the `attacks` bench bin and
//! CI's defense-flip gate.

use crate::world::{addrs, PeerSetup, World, WorldBuilder};
use holepunch::{
    PunchConfig, TcpPeer, TcpPeerConfig, TcpPeerEvent, UdpPeer, UdpPeerConfig, UdpPeerEvent,
};
use punch_nat::NatBehavior;
use punch_net::{
    Ctx, Device, Duration, Endpoint, IfaceId, LinkSpec, NodeId, Packet, SimTime, TcpFlags,
    TcpSegment,
};
use punch_rendezvous::{Message, PeerId, RendezvousServer, ServerConfig};
use punch_transport::{App, Os, SockEvent, SocketId, StackConfig};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Victim peer A in attack scenarios.
const A: PeerId = PeerId(1);
/// Victim peer B in attack scenarios.
const B: PeerId = PeerId(2);
/// The flooding host's private address (same realm as client A).
const FLOOD_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 66);
/// The public abuse/attacker host's address.
const ABUSE_IP: Ipv4Addr = Ipv4Addr::new(99, 9, 9, 9);
/// The port the abuse host listens (and is impersonated) on.
const ABUSE_PORT: u16 = 4321;
/// The second fleet server's address in the forgery scenario.
const SERVER2_IP: Ipv4Addr = Ipv4Addr::new(18, 181, 0, 32);

// ---------------------------------------------------------------------
// Attacker nodes
// ---------------------------------------------------------------------

/// A private-side host that opens NAT mappings from fresh source ports
/// in scripted bursts — the mapping-exhaustion attacker.
///
/// Each schedule entry `(at, ports)` binds `ports` new local UDP ports
/// at absolute sim time `at` and sends one datagram from each to
/// `sink`, so every port claims a fresh translation-table slot.
pub struct FloodBot {
    /// Where the flood datagrams are aimed (any public endpoint).
    sink: Endpoint,
    /// `(at, ports)` bursts, sorted by `at` in `on_start`.
    schedule: Vec<(Duration, u16)>,
    next: usize,
    next_port: u16,
    socks: Vec<SocketId>,
}

impl FloodBot {
    /// A flood bot aiming at `sink` with the given burst schedule.
    pub fn new(sink: Endpoint, schedule: Vec<(Duration, u16)>) -> Self {
        FloodBot {
            sink,
            schedule,
            next: 0,
            next_port: 30_000,
            socks: Vec::new(),
        }
    }

    fn arm_next(&self, os: &mut Os<'_, '_>) {
        if let Some(&(at, _)) = self.schedule.get(self.next) {
            let delta = at.saturating_sub(os.now().saturating_since(SimTime::ZERO));
            os.set_timer(delta, 1);
        }
    }
}

impl App for FloodBot {
    fn on_start(&mut self, os: &mut Os<'_, '_>) {
        self.schedule.sort();
        self.arm_next(os);
    }

    fn on_event(&mut self, _os: &mut Os<'_, '_>, _ev: SockEvent) {}

    fn on_timer(&mut self, os: &mut Os<'_, '_>, _token: u64) {
        let elapsed = os.now().saturating_since(SimTime::ZERO);
        while let Some(&(at, ports)) = self.schedule.get(self.next) {
            if at > elapsed {
                break;
            }
            self.next += 1;
            for _ in 0..ports {
                let port = self.next_port;
                self.next_port += 1;
                if let Ok(sock) = os.udp_bind(port) {
                    let _ = os.udp_send(sock, self.sink, Message::Ping.encode(false));
                    self.socks.push(sock);
                }
            }
            os.metric_inc_by("attack.flood.ports_opened", u64::from(ports));
        }
        self.arm_next(os);
    }
}

/// One scripted rendezvous-abuse burst.
#[derive(Clone, Copy, Debug)]
pub enum AbuseAction {
    /// Register `count` throwaway ids (`base_id..base_id + count`) in
    /// one burst — registration squatting against a capped table.
    Squat {
        /// First squatted id.
        base_id: u64,
        /// Ids in the burst.
        count: u32,
    },
    /// Fire `count` introduction requests for unknown targets — a
    /// control-plane flood that burns server work and error replies.
    IntroFlood {
        /// First requested (unregistered) target id.
        base_id: u64,
        /// Requests in the burst.
        count: u32,
    },
}

/// A public client abusing the rendezvous control plane on a script,
/// and counting any unsolicited traffic it receives (a successful
/// introduction hijack delivers the victim's punch probes here).
pub struct AbuseBot {
    server: Endpoint,
    /// `(at, action)` bursts, sorted by `at` in `on_start`.
    schedule: Vec<(Duration, AbuseAction)>,
    next: usize,
    sock: Option<SocketId>,
    /// Datagrams received from anyone — hijacked victims land here.
    received: u64,
}

impl AbuseBot {
    /// An abuse bot aimed at `server` with the given burst schedule.
    pub fn new(server: Endpoint, schedule: Vec<(Duration, AbuseAction)>) -> Self {
        AbuseBot {
            server,
            schedule,
            next: 0,
            sock: None,
            received: 0,
        }
    }

    /// Datagrams this bot has received (victim probes after a hijack).
    pub fn received(&self) -> u64 {
        self.received
    }

    fn arm_next(&self, os: &mut Os<'_, '_>) {
        if let Some(&(at, _)) = self.schedule.get(self.next) {
            let delta = at.saturating_sub(os.now().saturating_since(SimTime::ZERO));
            os.set_timer(delta, 1);
        }
    }
}

impl App for AbuseBot {
    fn on_start(&mut self, os: &mut Os<'_, '_>) {
        self.schedule
            .sort_by_key(|&(at, action)| match action {
                AbuseAction::Squat { base_id, .. } | AbuseAction::IntroFlood { base_id, .. } => {
                    (at, base_id)
                }
            });
        self.sock = Some(os.udp_bind(ABUSE_PORT).expect("abuse port free")); // punch-lint: allow(P001) fixed scenario port, bound once
        self.arm_next(os);
    }

    fn on_event(&mut self, _os: &mut Os<'_, '_>, ev: SockEvent) {
        if matches!(ev, SockEvent::UdpReceived { .. }) {
            self.received += 1;
        }
    }

    fn on_timer(&mut self, os: &mut Os<'_, '_>, _token: u64) {
        let sock = self.sock.expect("bound in on_start"); // punch-lint: allow(P001) on_timer only fires after on_start
        let private = os.local_endpoint(sock).expect("socket bound"); // punch-lint: allow(P001) socket bound in on_start
        let elapsed = os.now().saturating_since(SimTime::ZERO);
        while let Some(&(at, action)) = self.schedule.get(self.next) {
            if at > elapsed {
                break;
            }
            self.next += 1;
            match action {
                AbuseAction::Squat { base_id, count } => {
                    for i in 0..u64::from(count) {
                        let msg = Message::Register {
                            peer_id: PeerId(base_id + i),
                            private,
                        };
                        let _ = os.udp_send(sock, self.server, msg.encode(false));
                    }
                    os.metric_inc_by("attack.abuse.squats", u64::from(count));
                }
                AbuseAction::IntroFlood { base_id, count } => {
                    for i in 0..u64::from(count) {
                        let msg = Message::ConnectRequest {
                            peer_id: PeerId(base_id),
                            target: PeerId(base_id + 1 + i),
                            nonce: 0xBEEF ^ i,
                        };
                        let _ = os.udp_send(sock, self.server, msg.encode(false));
                    }
                    os.metric_inc_by("attack.abuse.intro_floods", u64::from(count));
                }
            }
        }
        self.arm_next(os);
    }
}

/// An off-path attacker node: a raw device on the backbone that emits
/// scripted packets with forged headers (spoofed source addresses) and
/// ignores everything it receives.
///
/// Attach one with [`add_spoofer`], then load forged packets mid-run
/// with [`spoof_at`] once the victim's endpoints are observable.
pub struct SpoofBot {
    queue: BTreeMap<u64, Packet>,
    next_token: u64,
}

impl SpoofBot {
    /// An idle spoofer; packets are loaded via [`spoof_at`].
    pub fn new() -> Self {
        SpoofBot {
            queue: BTreeMap::new(),
            next_token: 0,
        }
    }

    /// Queues `pkt` for emission `after` from now.
    pub fn schedule(&mut self, ctx: &mut Ctx<'_>, after: Duration, pkt: Packet) {
        let token = self.next_token;
        self.next_token += 1;
        self.queue.insert(token, pkt);
        ctx.set_timer(after, token);
    }
}

impl Default for SpoofBot {
    fn default() -> Self {
        Self::new()
    }
}

impl Device for SpoofBot {
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _iface: IfaceId, _pkt: Packet) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if let Some(pkt) = self.queue.remove(&token) {
            ctx.metric_inc("attack.spoof.injected");
            ctx.send(0, pkt);
        }
    }
}

/// Attaches a [`SpoofBot`] to the backbone router of a built world.
/// Call before the first `run_*`, so the node starts with the sim.
pub fn add_spoofer(world: &mut World) -> NodeId {
    let node = world.sim.add_node("spoof", Box::new(SpoofBot::new()));
    world.sim.connect(node, world.internet, LinkSpec::wan());
    node
}

/// Queues a forged packet on `spoofer` for emission `after` from now.
pub fn spoof_at(world: &mut World, spoofer: NodeId, after: Duration, pkt: Packet) {
    world.sim.with_node(spoofer, |dev, ctx| {
        dev.downcast_mut::<SpoofBot>()
            .expect("node is a SpoofBot") // punch-lint: allow(P001) typed-accessor contract: caller passes the node add_spoofer returned
            .schedule(ctx, after, pkt);
    });
}

// ---------------------------------------------------------------------
// Scenario runners
// ---------------------------------------------------------------------

/// What one attack trial did to the victim.
#[derive(Clone, Copy, Debug, Default)]
pub struct AttackReport {
    /// The victim pair established before (or despite) the attack.
    pub established: bool,
    /// Established sessions the attack killed (`SessionDied`,
    /// `PeerClosed`, terminal punch failures) as seen by victim A.
    pub deaths: u64,
    /// The attack had its victim-visible effect (sessions killed,
    /// punches stalled past 2 s, or hijacked probes delivered).
    pub disrupted: bool,
    /// The victim was healthy once the attack schedule drained (for the
    /// forgery leg: no probes leaked at all).
    pub recovered: bool,
    /// Milliseconds from attack start until the victim was healthy
    /// again; 0 when the attack never bit.
    pub recovery_ms: u64,
    /// Defense-side interventions (quota refusals, rejected RSTs,
    /// refused registrations, rejected forgeries). 0 with defenses off.
    pub defense_events: u64,
}

fn resilient_udp_peer(id: PeerId) -> PeerSetup {
    let server = Endpoint::new(addrs::SERVER, 1234);
    let mut c = UdpPeerConfig::new(id, server);
    c.server_keepalive = Duration::from_secs(2);
    c.register_retry = Duration::from_secs(1);
    let mut p = PunchConfig::resilient();
    p.keepalive_interval = Duration::from_secs(1);
    c.punch = p;
    PeerSetup::new(UdpPeer::new(c))
}

/// Drains victim A's UDP events, counting kills.
fn drain_udp_deaths(world: &mut World, node: NodeId) -> u64 {
    world.with_app::<UdpPeer, _>(node, |p, _| {
        p.take_events()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    UdpPeerEvent::SessionDied { .. } | UdpPeerEvent::PunchFailed { .. }
                )
            })
            .count() as u64
    })
}

/// Checks whether B heard fresh application data from A.
fn b_heard(world: &mut World, node: NodeId) -> bool {
    world.with_app::<UdpPeer, _>(node, |p, _| {
        p.take_events()
            .iter()
            .any(|e| matches!(e, UdpPeerEvent::Data { peer, .. } if *peer == A))
    })
}

/// ATK1 — mapping exhaustion. A flooding host behind the victim's NAT
/// bursts fresh-port traffic against a capped translation table; with
/// oldest-first eviction the victim's punched mapping is collateral.
/// Defense (`defended`): per-source quota + flood-resistant eviction
/// ([`NatBehavior::with_per_source_quota`],
/// [`NatBehavior::with_fair_eviction`]).
pub fn run_mapping_flood(seed: u64, defended: bool) -> AttackReport {
    const ATTACK_START: Duration = Duration::from_secs(6);
    const ATTACK_END: Duration = Duration::from_millis(11_000);

    let mut nat_a = NatBehavior::well_behaved().with_max_mappings(48);
    if defended {
        nat_a = nat_a.with_per_source_quota(8).with_fair_eviction();
    }
    // 12 bursts, 400 ms apart, 64 fresh ports each: every burst can
    // roll the whole 48-slot table under oldest-first eviction.
    let schedule: Vec<(Duration, u16)> = (0..12)
        .map(|k| (ATTACK_START + Duration::from_millis(400 * k), 64))
        .collect();

    let mut wb = WorldBuilder::new(seed).metrics();
    let server = Endpoint::new(addrs::SERVER, 1234);
    wb.server(addrs::SERVER, RendezvousServer::new(ServerConfig::default()));
    let na = wb.nat(nat_a, addrs::NAT_A);
    let nb = wb.nat(NatBehavior::well_behaved(), addrs::NAT_B);
    let a = wb.client(addrs::CLIENT_A, na, resilient_udp_peer(A));
    let b = wb.client(addrs::CLIENT_B, nb, resilient_udp_peer(B));
    wb.client(FLOOD_IP, na, PeerSetup::new(FloodBot::new(server, schedule)));
    let mut world = wb.build();
    let (a, b, nat_a_node) = (world.clients[a], world.clients[b], world.nats[0]);

    world.sim.run_for(Duration::from_secs(2));
    world.with_app::<UdpPeer, _>(a, |p, os| p.connect(os, B));
    let established = world.run_until_app::<UdpPeer>(a, SimTime::ZERO + ATTACK_START, |p| {
        p.is_established(B)
    });

    // Chatter through the attack window so on-demand repair (§3.6) has
    // traffic to ride on; count kills as they land.
    let mut deaths = 0;
    while world.sim.now().saturating_since(SimTime::ZERO) < ATTACK_END {
        world.with_app::<UdpPeer, _>(a, |p, os| {
            p.send(os, B, bytes::Bytes::from_static(b"chatter"));
        });
        world.sim.run_for(Duration::from_millis(250));
        deaths += drain_udp_deaths(&mut world, a);
        b_heard(&mut world, b);
    }

    // Recovery probe: from the attack's end, how long until B hears
    // fresh data again?
    let attack_end = world.sim.now();
    b_heard(&mut world, b);
    let deadline = attack_end + Duration::from_secs(30);
    let mut recovered = false;
    while world.sim.now() < deadline {
        world.with_app::<UdpPeer, _>(a, |p, os| {
            p.send(os, B, bytes::Bytes::from_static(b"recovery-probe"));
        });
        world.sim.run_for(Duration::from_millis(250));
        deaths += drain_udp_deaths(&mut world, a);
        if b_heard(&mut world, b) {
            recovered = true;
            break;
        }
    }
    let recovery_ms = if recovered && deaths > 0 {
        world.sim.now().saturating_since(attack_end).as_millis() as u64
    } else {
        0
    };

    AttackReport {
        established,
        deaths,
        disrupted: deaths > 0,
        recovered,
        recovery_ms,
        defense_events: world.nat(nat_a_node).stats().quota_refused,
    }
}

fn tcp_peer_setup(id: PeerId, port: u16, defended: bool) -> PeerSetup {
    let server = Endpoint::new(addrs::SERVER, 1234);
    let mut c = TcpPeerConfig::new(id, server);
    c.local_port = port;
    let mut stack = StackConfig::fast();
    if defended {
        stack = stack.with_rst_validation();
    }
    PeerSetup::new(TcpPeer::new(c)).with_stack(stack)
}

/// ATK2 — off-path RST injection. Once a punched §4 TCP session is up,
/// a [`SpoofBot`] sends a volley of RSTs forged from the peer's public
/// endpoint (the 4-tuple is what a rendezvous eavesdropper learns;
/// the sequence numbers are blind guesses). The classic stack accepts
/// any in-connection RST and the session dies; the RFC 5961-style gate
/// ([`StackConfig::with_rst_validation`]) drops or challenges every
/// blind guess.
pub fn run_rst_inject(seed: u64, defended: bool) -> AttackReport {
    let mut wb = WorldBuilder::new(seed).metrics();
    wb.server(addrs::SERVER, RendezvousServer::new(ServerConfig::default()));
    let na = wb.nat(NatBehavior::well_behaved(), addrs::NAT_A);
    let nb = wb.nat(NatBehavior::well_behaved(), addrs::NAT_B);
    let a = wb.client(addrs::CLIENT_A, na, tcp_peer_setup(A, 5001, defended));
    let b = wb.client(addrs::CLIENT_B, nb, tcp_peer_setup(B, 5002, defended));
    let mut world = wb.build();
    let (a, b) = (world.clients[a], world.clients[b]);
    let spoofer = add_spoofer(&mut world);

    world.sim.run_for(Duration::from_secs(2));
    world.with_app::<TcpPeer, _>(a, |p, os| p.connect(os, B));
    let deadline = world.sim.now() + Duration::from_secs(20);
    let established = world.run_until_app::<TcpPeer>(a, deadline, |p| p.is_established(B))
        && world.run_until_app::<TcpPeer>(b, deadline, |p| p.is_established(A));
    world.sim.run_for(Duration::from_secs(1));

    // The winning 4-tuple, as each side observed it: A's remote is B's
    // public endpoint and vice versa — everything an off-path attacker
    // who watched the introduction knows.
    let remote_of = |world: &mut World, node| {
        world.with_app::<TcpPeer, _>(node, |p, _| {
            p.take_events().iter().find_map(|e| match e {
                TcpPeerEvent::Established { remote, .. } => Some(*remote),
                _ => None,
            })
        })
    };
    let b_pub = remote_of(&mut world, a);
    let a_pub = remote_of(&mut world, b);

    let attack_start = world.sim.now();
    if let (Some(b_pub), Some(a_pub)) = (b_pub, a_pub) {
        for k in 0..4u32 {
            let seq = 0x4242_0000 ^ (k * 0x0101_0101);
            let rst = TcpSegment::control(TcpFlags::RST, seq, 0);
            spoof_at(
                &mut world,
                spoofer,
                Duration::from_millis(200 + 100 * u64::from(k)),
                Packet::tcp(b_pub, a_pub, rst),
            );
        }
    }
    world.sim.run_for(Duration::from_secs(2));

    let deaths = world.with_app::<TcpPeer, _>(a, |p, _| {
        p.take_events()
            .iter()
            .filter(|e| matches!(e, TcpPeerEvent::PeerClosed { peer } if *peer == B))
            .count() as u64
    });

    let recovered;
    let mut recovery_ms = 0;
    if deaths > 0 {
        // The embedding application reconnects on PeerClosed; measure
        // how long the victim was down from the volley's start.
        world.with_app::<TcpPeer, _>(a, |p, os| p.connect(os, B));
        let deadline = world.sim.now() + Duration::from_secs(30);
        recovered = world.run_until_app::<TcpPeer>(a, deadline, |p| p.is_established(B));
        if recovered {
            recovery_ms = world.sim.now().saturating_since(attack_start).as_millis() as u64;
        }
    } else {
        // Session survived the volley; confirm it still carries data.
        world.with_app::<TcpPeer, _>(a, |p, os| {
            p.send(os, B, bytes::Bytes::from_static(b"post-volley"));
        });
        world.sim.run_for(Duration::from_secs(1));
        recovered = world.with_app::<TcpPeer, _>(b, |p, _| {
            p.take_events()
                .iter()
                .any(|e| matches!(e, TcpPeerEvent::Data { peer, .. } if *peer == A))
        });
    }

    AttackReport {
        established,
        deaths,
        disrupted: deaths > 0,
        recovered,
        recovery_ms,
        defense_events: world
            .sim
            .metrics_snapshot()
            .counter_family("transport.rst_rejected"),
    }
}

/// ATK3 — registration squatting. A public client floods a capped
/// rendezvous table with throwaway registrations (plus an introduction
/// flood for good measure) while the victim pair tries to punch; with
/// oldest-first eviction the victims' registrations are churned out
/// faster than their keepalives restore them, and the introduction
/// stalls until the storm drains. Defenses: protect-active eviction
/// ([`ServerConfig::with_protect_active`]) and per-source rate
/// limiting ([`ServerConfig::with_rate_limit`]).
pub fn run_reg_squat(seed: u64, defended: bool) -> AttackReport {
    const CONNECT_AT: Duration = Duration::from_secs(3);

    let mut cfg = ServerConfig::default().with_max_clients(24);
    if defended {
        cfg = cfg
            .with_protect_active(Duration::from_secs(5))
            .with_rate_limit(25);
    }
    // 24 bursts, 250 ms apart (2.2 s → 8.0 s), 40 fresh squat ids each:
    // the 24-slot table never stays legitimate for a full round trip.
    let mut schedule: Vec<(Duration, AbuseAction)> = Vec::new();
    for k in 0..24u64 {
        let at = Duration::from_millis(2_200 + 250 * k);
        schedule.push((
            at,
            AbuseAction::Squat {
                base_id: 50_000 + k * 64,
                count: 40,
            },
        ));
        if k % 4 == 0 {
            schedule.push((
                at,
                AbuseAction::IntroFlood {
                    base_id: 90_000,
                    count: 12,
                },
            ));
        }
    }

    let mut wb = WorldBuilder::new(seed).metrics();
    let server_ep = Endpoint::new(addrs::SERVER, 1234);
    let s = wb.server(addrs::SERVER, RendezvousServer::new(cfg));
    let na = wb.nat(NatBehavior::well_behaved(), addrs::NAT_A);
    let nb = wb.nat(NatBehavior::well_behaved(), addrs::NAT_B);
    let a = wb.client(addrs::CLIENT_A, na, resilient_udp_peer(A));
    let b = wb.client(addrs::CLIENT_B, nb, resilient_udp_peer(B));
    wb.public_client(ABUSE_IP, PeerSetup::new(AbuseBot::new(server_ep, schedule)));
    let mut world = wb.build();
    let (s, a, b) = (world.servers[s], world.clients[a], world.clients[b]);

    world.sim.run_until(SimTime::ZERO + CONNECT_AT);
    world.with_app::<UdpPeer, _>(a, |p, os| p.connect(os, B));
    let deadline = SimTime::ZERO + Duration::from_secs(60);
    let established = world.run_until_app::<UdpPeer>(a, deadline, |p| p.is_established(B));
    let delay_ms = world
        .sim
        .now()
        .saturating_since(SimTime::ZERO + CONNECT_AT)
        .as_millis() as u64;

    // Data must actually flow; an introduction alone is not recovery.
    let mut recovered = false;
    if established {
        b_heard(&mut world, b);
        let deadline = world.sim.now() + Duration::from_secs(10);
        while world.sim.now() < deadline {
            world.with_app::<UdpPeer, _>(a, |p, os| {
                p.send(os, B, bytes::Bytes::from_static(b"post-storm"));
            });
            world.sim.run_for(Duration::from_millis(250));
            if b_heard(&mut world, b) {
                recovered = true;
                break;
            }
        }
    }

    let stats = world.app::<RendezvousServer>(s).stats();
    let disrupted = delay_ms > 2_000;
    AttackReport {
        established,
        deaths: 0,
        disrupted,
        recovered,
        recovery_ms: if disrupted { delay_ms } else { 0 },
        defense_events: stats.reg_refused + stats.rate_limited,
    }
}

/// ATK4 — rogue `SrvIntroduce` forgery. Against a two-server fleet, an
/// off-path attacker forges a server-to-server introduction (source
/// spoofed to the second fleet member) naming its own endpoint as the
/// "requester"; an unauthenticated fleet dutifully introduces the
/// victim, whose punch probes then hammer the attacker — endpoint
/// disclosure plus reflected traffic. With a shared fleet secret
/// ([`ServerConfig::with_fleet_secret`]) the unsigned forgery is
/// rejected at the door.
pub fn run_intro_forgery(seed: u64, defended: bool) -> AttackReport {
    let s1_ep = Endpoint::new(addrs::SERVER, 1234);
    let s2_ep = Endpoint::new(SERVER2_IP, 1234);
    let fleet = vec![s1_ep, s2_ep];
    let mut cfg1 = ServerConfig::default().with_fleet(fleet.clone(), 0);
    let mut cfg2 = ServerConfig::default().with_fleet(fleet, 1);
    if defended {
        cfg1 = cfg1.with_fleet_secret(0xFEED_F00D);
        cfg2 = cfg2.with_fleet_secret(0xFEED_F00D);
    }

    let mut wb = WorldBuilder::new(seed).metrics();
    let s1 = wb.server(addrs::SERVER, RendezvousServer::new(cfg1));
    wb.server(SERVER2_IP, RendezvousServer::new(cfg2));
    let na = wb.nat(NatBehavior::well_behaved(), addrs::NAT_A);
    let v = wb.client(addrs::CLIENT_A, na, resilient_udp_peer(A));
    let bot = wb.public_client(ABUSE_IP, PeerSetup::new(AbuseBot::new(s1_ep, Vec::new())));
    let mut world = wb.build();
    let (s1, v, bot) = (world.servers[s1], world.clients[v], world.clients[bot]);
    let spoofer = add_spoofer(&mut world);

    // Let the victim register with its shard, then forge.
    world.sim.run_for(Duration::from_secs(2));
    let established = world.app::<UdpPeer>(v).is_registered();
    let attacker_ep = Endpoint::new(ABUSE_IP, ABUSE_PORT);
    let forged = Message::SrvIntroduce {
        requester: PeerId(666),
        requester_public: attacker_ep,
        requester_private: attacker_ep,
        target: A,
        nonce: 0xABCD,
        tcp: false,
    };
    spoof_at(
        &mut world,
        spoofer,
        Duration::from_millis(100),
        Packet::udp(s2_ep, s1_ep, forged.encode(false)),
    );
    world.sim.run_for(Duration::from_secs(5));

    let hijack_probes = world.app::<AbuseBot>(bot).received();
    AttackReport {
        established,
        deaths: 0,
        disrupted: hijack_probes > 0,
        recovered: hijack_probes == 0,
        recovery_ms: 0,
        defense_events: world.app::<RendezvousServer>(s1).stats().auth_rejected,
    }
}
