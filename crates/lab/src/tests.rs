//! Wiring tests for the topology builders.

use crate::world::{addrs, fig4, fig5, fig6, PeerSetup, WorldBuilder};
use punch_nat::{NatBehavior, NatDevice};
use punch_net::testutil::SinkDevice;
use punch_net::{Duration, Endpoint, Packet};
use punch_rendezvous::{RendezvousServer, ServerConfig};
use punch_transport::{App, Os, SockEvent};

/// Sends one datagram to the rendezvous port at start-up.
struct Pinger;

impl App for Pinger {
    fn on_start(&mut self, os: &mut Os<'_, '_>) {
        let sock = os.udp_bind(4321).expect("bind"); // punch-lint: allow(P001) test-only module, compiled under cfg(test) in lib.rs
        let msg = punch_rendezvous::Message::Ping.encode(true);
        os.udp_send(sock, Endpoint::new(addrs::SERVER, 1234), msg)
            .expect("send"); // punch-lint: allow(P001) test-only module, compiled under cfg(test) in lib.rs
    }

    fn on_event(&mut self, _os: &mut Os<'_, '_>, _ev: SockEvent) {}
}

#[test]
fn fig5_wires_clients_behind_their_nats() {
    let mut sc = fig5(
        1,
        NatBehavior::well_behaved(),
        NatBehavior::well_behaved(),
        PeerSetup::new(Pinger),
        PeerSetup::new(Pinger),
    );
    sc.world.sim.run_for(Duration::from_secs(1));
    // Each NAT created exactly one mapping (its client's ping).
    for &nat in &sc.world.nats {
        assert_eq!(sc.world.nat(nat).stats().mappings_created, 1);
    }
    // And the server answered both pings (traffic flowed both ways).
    let sent = sc.world.sim.stats().packets_sent;
    assert!(sent >= 4, "pings and pongs crossed the topology: {sent}");
}

#[test]
fn fig4_clients_share_one_nat() {
    let sc = fig4(
        2,
        NatBehavior::well_behaved(),
        PeerSetup::new(Pinger),
        PeerSetup::new(Pinger),
    );
    assert_eq!(sc.world.nats.len(), 1);
    assert_eq!(sc.world.clients.len(), 2);
}

#[test]
fn fig6_nests_nats() {
    let mut sc = fig6(
        3,
        NatBehavior::well_behaved(),
        NatBehavior::well_behaved(),
        NatBehavior::well_behaved(),
        PeerSetup::new(Pinger),
        PeerSetup::new(Pinger),
    );
    assert_eq!(sc.world.nats.len(), 3, "ISP NAT + two consumer NATs");
    sc.world.sim.run_for(Duration::from_secs(1));
    // The ISP NAT translates both consumer NATs' realm addresses.
    let isp = sc.world.nat(sc.world.nats[0]);
    assert_eq!(isp.stats().mappings_created, 2);
    // Consumer NATs each translate their single client.
    assert_eq!(sc.world.nat(sc.world.nats[1]).stats().mappings_created, 1);
    assert_eq!(sc.world.nat(sc.world.nats[2]).stats().mappings_created, 1);
}

#[test]
fn builder_routes_public_clients_and_servers() {
    let mut wb = WorldBuilder::new(4);
    wb.server(
        addrs::SERVER,
        RendezvousServer::new(ServerConfig::default()),
    );
    wb.public_client("99.1.1.1".parse().unwrap(), PeerSetup::new(Pinger));
    let mut world = wb.build();
    world.sim.run_for(Duration::from_secs(1));
    // The ping reached the server and the pong came back: 2 packets each
    // crossing 2 links.
    assert!(world.sim.stats().packets_delivered >= 4);
}

#[test]
fn nat_iface_zero_faces_upstream() {
    // Inject a packet on the NAT's public iface addressed to its public
    // IP: with no mapping it must be counted as blocked — proof iface 0
    // is the public side.
    let mut wb = WorldBuilder::new(5);
    wb.server(
        addrs::SERVER,
        RendezvousServer::new(ServerConfig::default()),
    );
    let n = wb.nat(NatBehavior::well_behaved(), addrs::NAT_A);
    wb.client(addrs::CLIENT_A, n, PeerSetup::new(Pinger));
    let mut world = wb.build();
    let nat = world.nats[0];
    world.sim.run_for(Duration::from_millis(1));
    world.sim.inject(
        nat,
        0,
        Packet::udp(
            "9.9.9.9:9".parse().unwrap(),
            Endpoint::new(addrs::NAT_A, 50000),
            b"x".as_ref(),
        ),
    );
    world.sim.run_for(Duration::from_millis(10));
    assert_eq!(
        world.sim.device::<NatDevice>(nat).stats().inbound_blocked,
        1
    );
}

#[test]
#[should_panic(expected = "parent NAT must be declared first")]
fn nat_behind_requires_existing_parent() {
    let mut wb = WorldBuilder::new(6);
    wb.nat_behind(NatBehavior::well_behaved(), addrs::ISP_NAT_A, 0);
}

#[test]
fn world_accessors_panic_helpfully_on_wrong_type() {
    let mut wb = WorldBuilder::new(7);
    wb.server(
        addrs::SERVER,
        RendezvousServer::new(ServerConfig::default()),
    );
    let world = wb.build();
    let server = world.servers[0];
    // Downcasting the server app to the wrong type panics (not UB).
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = world.app::<Pinger>(server);
    }));
    assert!(result.is_err());
}

#[test]
fn sink_devices_compose_with_builder_nodes() {
    // The builder interoperates with raw punch-net devices added directly
    // to the sim afterwards.
    let mut wb = WorldBuilder::new(8);
    wb.server(
        addrs::SERVER,
        RendezvousServer::new(ServerConfig::default()),
    );
    let mut world = wb.build();
    let extra = world
        .sim
        .add_node("raw-sink", Box::new(SinkDevice::default()));
    world
        .sim
        .connect(world.internet, extra, punch_net::LinkSpec::lan());
    world.sim.run_for(Duration::from_millis(10));
    assert_eq!(world.sim.device::<SinkDevice>(extra).packets.len(), 0);
}

// ---------------------------------------------------------------------
// Chaos shrinker: the pair-removal pass (delta debugging beyond the
// single-removal fixed point).
// ---------------------------------------------------------------------

mod shrinker {
    use crate::chaos::{shrink_with, ChaosFault};

    fn reboots(n: usize) -> Vec<ChaosFault> {
        (0..n)
            .map(|i| ChaosFault::RebootNatA {
                at_ms: 1_000 + i as u64,
            })
            .collect()
    }

    /// A synthetic failure that only reproduces with an *even, nonzero*
    /// number of faults: removing any single fault makes it pass, so
    /// the single-removal pass is stuck at the full schedule; removing
    /// pairs walks it down to the minimal failing pair.
    #[test]
    fn pair_removal_shrinks_past_the_single_removal_fixed_point() {
        let schedule = reboots(6);
        let shrunk = shrink_with(&schedule, |c| c.len() % 2 == 0 && !c.is_empty());
        assert_eq!(shrunk.len(), 2, "pairs must fall 6 -> 4 -> 2: {shrunk:?}");
    }

    /// Single-removal shrinking still works and runs first: a failure
    /// pinned to one specific fault shrinks to exactly that fault.
    #[test]
    fn single_removal_still_reaches_singletons() {
        let schedule = reboots(5);
        let keep = schedule[3];
        let shrunk = shrink_with(&schedule, |c| c.contains(&keep));
        assert_eq!(shrunk, vec![keep]);
    }

    /// A passing schedule comes back untouched.
    #[test]
    fn passing_schedules_are_not_shrunk() {
        let schedule = reboots(4);
        assert_eq!(shrink_with(&schedule, |_| false), schedule);
    }

    /// Coupled decoys: the repro needs fault 0, and faults 1+2 only
    /// cancel each other out jointly — the single pass removes neither,
    /// the pair pass removes both.
    #[test]
    fn coupled_decoys_are_removed_jointly() {
        let schedule = reboots(3);
        let shrunk = shrink_with(&schedule, |c| {
            let has_anchor = c.contains(&schedule[0]);
            let d1 = c.contains(&schedule[1]);
            let d2 = c.contains(&schedule[2]);
            has_anchor && (d1 == d2)
        });
        assert_eq!(shrunk, vec![schedule[0]]);
    }
}
