//! Sharded million-endpoint worlds.
//!
//! A [`ShardedWorld`] partitions a large population of hole-punching
//! sessions (each one a Figure-5 topology: two clients behind two NATs,
//! plus a rendezvous server) across many independent per-shard [`Sim`]s,
//! so the population can be advanced by a worker pool while keeping the
//! determinism contract the rest of the repo is built on:
//!
//! - **Layout invariance.** Every shard sim is created with the *same*
//!   seed and [`Sim::use_named_rng_streams`], and every node carries a
//!   globally unique name (`m17.a`, `m17.na`, ...). A node's randomness
//!   therefore depends only on `(seed, name)` — not on which shard it
//!   landed in — and per-session outcomes are byte-identical whether the
//!   world runs as 1 shard or 64.
//! - **Worker invariance.** Shards only interact at epoch boundaries:
//!   each epoch runs every shard to the same sim-time deadline in
//!   parallel (the [`crate::par`] pool), then polls outcomes and releases
//!   connect waves *sequentially in shard order*. No result ever depends
//!   on which worker advanced which shard, so `PUNCH_JOBS=1` and
//!   `PUNCH_JOBS=16` produce identical reports.
//!
//! Cross-session coupling inside a shard is limited to the shared
//! rendezvous server, which reacts to each datagram independently and at
//! the instant it arrives; all links are jitter-free, so arrival times
//! never depend on unrelated traffic. That is what makes the per-session
//! outcome stream independent of the shard layout.

use crate::par;
use crate::world::addrs;
use holepunch::{
    CandidatePlan, PeerId, PredictionStrategy, SourceSpec, UdpPeer, UdpPeerConfig,
};
use punch_nat::{NatBehavior, NatDevice};
use punch_net::{
    Cidr, Duration, Endpoint, FaultPlan, LinkSpec, MetricsSnapshot, NodeId, QueueStats, Router,
    Sim, SimStats, SimTime,
};
use punch_rendezvous::{RendezvousServer, ServerConfig, ServerStats};
use punch_transport::{HostDevice, Os, StackConfig};
use std::net::Ipv4Addr;
use std::sync::Mutex;

/// Configuration for a [`ShardedWorld`].
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Master seed; shared by every shard (names disambiguate streams).
    pub seed: u64,
    /// Total number of punch sessions (2 clients + 2 NATs each).
    pub sessions: usize,
    /// Number of per-shard sims. Session `i` lands in shard `i % shards`.
    pub shards: usize,
    /// Sim-time length of one epoch (the cross-shard synchronization
    /// quantum: outcome polling and wave release happen on this grid).
    pub epoch: Duration,
    /// Sim time at which the first connect wave is released (clients
    /// need to have registered with their shard's server by then).
    pub connect_at: Duration,
    /// Give-up horizon (sim time past `connect_at`); sessions still
    /// unresolved at the deadline stay [`SessionOutcome::Pending`].
    pub deadline: Duration,
    /// Number of connect waves. Wave `w+1` is released once 90% of the
    /// already-released sessions have resolved — a deterministic
    /// cross-shard feedback loop evaluated at epoch boundaries.
    pub waves: usize,
    /// Every `symmetric_every`-th session runs both NATs as symmetric
    /// (harder to punch); 0 disables.
    pub symmetric_every: usize,
    /// Enable the per-shard metrics registries (merged on demand).
    pub metrics: bool,
    /// Worker-pool size override; `None` uses [`par::jobs`] (the
    /// `PUNCH_JOBS` environment variable, then detected parallelism).
    pub workers: Option<usize>,
    /// Rendezvous fleet size *n* (servers per shard sim). `1` (the
    /// default) builds the classic single-server world, byte for byte;
    /// larger fleets register every client with its `replication` ring
    /// owners and route introductions across shards server-to-server.
    pub servers: usize,
    /// k of [`ShardConfig::servers`]: how many ring owners each client
    /// registers with. Ignored when `servers == 1`.
    pub replication: usize,
    /// Restart fleet member `j` (losing its tables) at the given sim
    /// time, in every shard sim — the flash-crowd survival fault.
    pub server_restart: Option<(usize, Duration)>,
    /// Harden the clients ([`holepunch::PunchConfig::resilient`], 2 s
    /// server keepalives) so they detect a lost owner and re-register
    /// instead of idling until the default 15 s keepalive.
    pub resilient_clients: bool,
    /// Give the symmetric sessions a sequential-delta prediction source
    /// in their candidate plan, so those pairs race a predicted-port
    /// window instead of falling straight back to the relay. Off by
    /// default: the classic world is byte-for-byte unchanged.
    pub predict_symmetric: bool,
}

impl ShardConfig {
    /// A config with the defaults used by the million-endpoint bench.
    pub fn new(seed: u64, sessions: usize) -> Self {
        ShardConfig {
            seed,
            sessions,
            shards: 8,
            epoch: Duration::from_millis(250),
            connect_at: Duration::from_secs(2),
            deadline: Duration::from_secs(60),
            waves: 1,
            symmetric_every: 10,
            metrics: false,
            workers: None,
            servers: 1,
            replication: 2,
            server_restart: None,
            resilient_clients: false,
            predict_symmetric: false,
        }
    }
}

/// How one session ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionOutcome {
    /// Not yet resolved (or never released before the deadline).
    Pending,
    /// Direct (hole-punched) connectivity.
    Direct,
    /// Fell back to relaying through the shard's server.
    Relay,
    /// No connectivity at all.
    Failed,
}

impl SessionOutcome {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SessionOutcome::Pending => "pending",
            SessionOutcome::Direct => "direct",
            SessionOutcome::Relay => "relay",
            SessionOutcome::Failed => "failed",
        }
    }
}

/// Resolved/released totals, by outcome.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Sessions that established a direct path.
    pub direct: usize,
    /// Sessions that fell back to the relay.
    pub relay: usize,
    /// Sessions that failed outright.
    pub failed: usize,
    /// Sessions still unresolved (deadline hit, or never released).
    pub pending: usize,
}

/// One punch session inside a shard.
struct Session {
    /// Global session index (stable across shard layouts).
    global: usize,
    /// Client A's node in the shard sim.
    a: NodeId,
    /// Peer id of client B (A connects to B).
    peer_b: PeerId,
    released: bool,
    outcome: SessionOutcome,
    resolved_at: Option<SimTime>,
    /// A's hole-punch latency (first PayloadAck minus punch start),
    /// captured the epoch the session resolves [`SessionOutcome::Direct`].
    latency: Option<Duration>,
}

/// One shard: an independent sim plus its resident sessions.
struct Shard {
    sim: Sim,
    sessions: Vec<Session>,
    /// The shard's rendezvous servers, in fleet order.
    servers: Vec<NodeId>,
}

/// A population of punch sessions partitioned across per-shard sims.
///
/// # Examples
///
/// ```
/// use punch_lab::shard::{ShardConfig, ShardedWorld};
///
/// let mut cfg = ShardConfig::new(7, 8);
/// cfg.shards = 2;
/// let mut world = ShardedWorld::build(&cfg);
/// world.run();
/// let counts = world.outcome_counts();
/// assert_eq!(counts.pending, 0);
/// ```
pub struct ShardedWorld {
    cfg: ShardConfig,
    shards: Vec<Mutex<Shard>>,
    released: usize,
    resolved: usize,
    next_wave: usize,
    epochs: u64,
    now: SimTime,
    nodes: usize,
}

impl ShardedWorld {
    /// Builds all shard sims and their resident sessions. Heavy for
    /// large populations (four nodes and three links per session).
    pub fn build(cfg: &ShardConfig) -> Self {
        let shard_count = cfg.shards.max(1);
        let per_shard = cfg.sessions.div_ceil(shard_count.max(1)).max(1);
        let server_ep = Endpoint::new(addrs::SERVER, 1234);
        let lan = LinkSpec::new(Duration::from_micros(200));
        let nat_wan = LinkSpec::new(Duration::from_millis(10));
        let server_wan = LinkSpec::new(Duration::from_millis(5));

        // Fleet endpoints: 18.181.0.31 (the classic single server) and
        // upwards. `servers == 1` keeps `fleet` empty so the build below
        // is byte-identical to the pre-fleet world.
        assert!(cfg.servers <= 128, "fleet larger than the address plan");
        let fleet: Vec<Endpoint> = if cfg.servers > 1 {
            (0..cfg.servers)
                .map(|j| Endpoint::new(Ipv4Addr::new(18, 181, 0, 31 + j as u8), 1234))
                .collect()
        } else {
            Vec::new()
        };
        let replication = cfg.replication.clamp(1, cfg.servers.max(1));

        let mut shards = Vec::with_capacity(shard_count);
        let mut nodes = 0usize;
        for s in 0..shard_count {
            // Same seed everywhere: named streams make node randomness a
            // function of the global node name, not the shard layout.
            let mut sim = Sim::new(cfg.seed);
            sim.use_named_rng_streams();
            if cfg.metrics {
                sim.enable_metrics();
            }

            let internet = sim.add_node("internet", Box::new(Router::new()));
            let server_cap = 2 * per_shard + 16;
            let mut server_nodes = Vec::with_capacity(cfg.servers.max(1));
            let mut routes: Vec<(Cidr, usize)> = Vec::new();
            if fleet.is_empty() {
                let server_cfg = ServerConfig::default().with_max_clients(server_cap);
                let server = sim.add_node(
                    "server",
                    Box::new(HostDevice::new(
                        addrs::SERVER,
                        StackConfig::default(),
                        Box::new(RendezvousServer::new(server_cfg)),
                    )),
                );
                let (r_srv, _) = sim.connect(internet, server, server_wan);
                routes.push((Cidr::host(addrs::SERVER), r_srv));
                server_nodes.push(server);
            } else {
                for (j, ep) in fleet.iter().enumerate() {
                    let server_cfg = ServerConfig::default()
                        .with_max_clients(server_cap)
                        .with_fleet(fleet.clone(), j)
                        .with_replication(replication);
                    let server = sim.add_node(
                        format!("server{j}"),
                        Box::new(HostDevice::new(
                            ep.ip,
                            StackConfig::default(),
                            Box::new(RendezvousServer::new(server_cfg)),
                        )),
                    );
                    let (r_srv, _) = sim.connect(internet, server, server_wan);
                    routes.push((Cidr::host(ep.ip), r_srv));
                    server_nodes.push(server);
                }
            }

            let mut sessions = Vec::with_capacity(per_shard);
            for i in (s..cfg.sessions).step_by(shard_count) {
                let symmetric = cfg.symmetric_every > 0
                    && i % cfg.symmetric_every == cfg.symmetric_every - 1;
                let behavior = if symmetric {
                    NatBehavior::symmetric()
                } else {
                    NatBehavior::port_restricted_cone()
                };
                // Globally unique public addresses: 30.x for A-side NATs,
                // 31.x for B-side (realm-private client addresses repeat).
                let nat_a_ip = Ipv4Addr::from(0x1E00_0000u32 + i as u32);
                let nat_b_ip = Ipv4Addr::from(0x1F00_0000u32 + i as u32);
                let peer_a = PeerId(2 * i as u64 + 1);
                let peer_b = PeerId(2 * i as u64 + 2);

                let mut side = |tag: &str, nat_ip: Ipv4Addr, client_ip: Ipv4Addr, id: PeerId| {
                    let nat = sim.add_node(
                        format!("m{i}.n{tag}"),
                        Box::new(NatDevice::new(behavior.clone(), vec![nat_ip])),
                    );
                    // NAT iface 0 must face the WAN, so connect it first.
                    let (_, r_iface) = sim.connect(nat, internet, nat_wan);
                    routes.push((Cidr::host(nat_ip), r_iface));
                    let mut ucfg = UdpPeerConfig::new(id, server_ep);
                    if !fleet.is_empty() {
                        ucfg = ucfg.with_fleet(fleet.clone(), replication);
                    }
                    if cfg.resilient_clients {
                        ucfg.server_keepalive = Duration::from_secs(2);
                        ucfg.register_retry = Duration::from_secs(1);
                        let mut p = holepunch::PunchConfig::resilient();
                        p.keepalive_interval = Duration::from_secs(1);
                        ucfg.punch = p;
                    }
                    if cfg.predict_symmetric && symmetric {
                        ucfg.punch = ucfg.punch.clone().with_plan(
                            CandidatePlan::basic().with_source(SourceSpec::predicted(
                                PredictionStrategy::SequentialDelta { window: 8 },
                            )),
                        );
                    }
                    let client = sim.add_node(
                        format!("m{i}.{tag}"),
                        Box::new(HostDevice::new(
                            client_ip,
                            StackConfig::fast(),
                            Box::new(UdpPeer::new(ucfg)),
                        )),
                    );
                    sim.connect(nat, client, lan);
                    client
                };
                let a = side("a", nat_a_ip, addrs::CLIENT_A, peer_a);
                let _b = side("b", nat_b_ip, addrs::CLIENT_B, peer_b);

                sessions.push(Session {
                    global: i,
                    a,
                    peer_b,
                    released: false,
                    outcome: SessionOutcome::Pending,
                    resolved_at: None,
                    latency: None,
                });
            }

            let router = sim.device_mut::<Router>(internet);
            for (prefix, iface) in routes {
                router.add_route(prefix, iface);
            }
            if let Some((j, at)) = cfg.server_restart {
                let node = server_nodes[j % server_nodes.len()];
                FaultPlan::new().restart(SimTime::ZERO + at, node).apply(&mut sim);
            }
            nodes += sim.node_count();
            shards.push(Mutex::new(Shard {
                sim,
                sessions,
                servers: server_nodes,
            }));
        }

        ShardedWorld {
            cfg: cfg.clone(),
            shards,
            released: 0,
            resolved: 0,
            next_wave: 0,
            epochs: 0,
            now: SimTime::ZERO,
            nodes,
        }
    }

    /// Runs the population to completion (all sessions resolved) or to
    /// the configured deadline, whichever comes first.
    ///
    /// Each epoch: advance every shard to the epoch boundary in parallel,
    /// then — sequentially, in shard order — poll outcomes and release
    /// any wave that has come due. Both sequential phases see every shard
    /// at exactly the boundary time, so their effects are identical
    /// under any worker count or shard layout.
    pub fn run(&mut self) {
        if self.cfg.sessions == 0 {
            return;
        }
        let waves = self.cfg.waves.max(1);
        let workers = self.cfg.workers.unwrap_or_else(par::jobs);
        let hard_deadline = SimTime::ZERO + self.cfg.connect_at + self.cfg.deadline;
        let mut boundary = SimTime::ZERO + self.cfg.connect_at;
        loop {
            par::run_with_workers(&self.shards, workers, |_, m| {
                lock(m).sim.run_until(boundary);
            });
            self.now = boundary;
            self.epochs += 1;

            // Poll released-but-unresolved sessions, in shard order.
            let mut newly = 0usize;
            for m in &self.shards {
                let shard = &mut *lock(m);
                for sess in &mut shard.sessions {
                    if !sess.released || sess.outcome != SessionOutcome::Pending {
                        continue;
                    }
                    let app = shard.sim.device::<HostDevice>(sess.a).app::<UdpPeer>();
                    let outcome = if app.is_established(sess.peer_b) {
                        SessionOutcome::Direct
                    } else if app.is_relaying(sess.peer_b) {
                        SessionOutcome::Relay
                    } else if app.is_failed(sess.peer_b) {
                        SessionOutcome::Failed
                    } else {
                        continue;
                    };
                    sess.outcome = outcome;
                    sess.resolved_at = Some(boundary);
                    if outcome == SessionOutcome::Direct {
                        sess.latency = app.timeline(sess.peer_b).and_then(|t| t.punch_latency());
                    }
                    newly += 1;
                }
            }
            self.resolved += newly;

            // Release the next wave once 90% of released sessions have
            // resolved (wave 0 goes out unconditionally at connect_at).
            while self.next_wave < waves
                && (self.next_wave == 0 || self.resolved * 10 >= self.released * 9)
            {
                let w = self.next_wave;
                let lo = w * self.cfg.sessions / waves;
                let hi = (w + 1) * self.cfg.sessions / waves;
                for i in lo..hi {
                    let m = &self.shards[i % self.shards.len()];
                    let shard = &mut *lock(m);
                    let sess = &mut shard.sessions[i / self.shards.len()];
                    debug_assert_eq!(sess.global, i);
                    let (a, peer_b) = (sess.a, sess.peer_b);
                    with_peer(&mut shard.sim, a, |app, os| app.connect(os, peer_b));
                    sess.released = true;
                }
                self.released += hi - lo;
                self.next_wave += 1;
            }

            if (self.released == self.cfg.sessions && self.resolved == self.released)
                || boundary >= hard_deadline
            {
                break;
            }
            boundary += self.cfg.epoch;
        }
    }

    /// Total nodes across all shards (routers and servers included).
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Epoch boundaries crossed so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The common sim time all shards have reached.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Outcome totals across the population.
    pub fn outcome_counts(&self) -> OutcomeCounts {
        let mut c = OutcomeCounts::default();
        for m in &self.shards {
            for sess in &lock(m).sessions {
                match sess.outcome {
                    SessionOutcome::Pending => c.pending += 1,
                    SessionOutcome::Direct => c.direct += 1,
                    SessionOutcome::Relay => c.relay += 1,
                    SessionOutcome::Failed => c.failed += 1,
                }
            }
        }
        c
    }

    /// Engine counters summed across shards.
    pub fn merged_stats(&self) -> SimStats {
        let mut total = SimStats::default();
        for m in &self.shards {
            let s = lock(m).sim.stats();
            total.events += s.events;
            total.packets_sent += s.packets_sent;
            total.packets_delivered += s.packets_delivered;
            total.packets_lost += s.packets_lost;
            total.device_drops += s.device_drops;
            total.link_down_drops += s.link_down_drops;
            total.packets_duplicated += s.packets_duplicated;
            total.packets_reordered += s.packets_reordered;
            total.packets_corrupted += s.packets_corrupted;
            total.packets_truncated += s.packets_truncated;
            total.faults_injected += s.faults_injected;
            total.busy_nanos += s.busy_nanos;
        }
        total
    }

    /// Event-queue/pool counters across shards: high-water marks take the
    /// max, volume counters sum.
    pub fn merged_queue_stats(&self) -> QueueStats {
        let mut total = QueueStats::default();
        for m in &self.shards {
            let q = lock(m).sim.queue_stats();
            total.depth_high_water = total.depth_high_water.max(q.depth_high_water);
            total.pool_slots += q.pool_slots;
            total.pool_recycled += q.pool_recycled;
            total.batches_coalesced += q.batches_coalesced;
        }
        total
    }

    /// Direct-punch latencies in global session order (sessions that
    /// resolved [`SessionOutcome::Direct`] and recorded a timeline).
    pub fn latencies(&self) -> Vec<Duration> {
        let mut v: Vec<(usize, Duration)> = Vec::new();
        for m in &self.shards {
            for sess in &lock(m).sessions {
                if let Some(l) = sess.latency {
                    v.push((sess.global, l));
                }
            }
        }
        v.sort_by_key(|&(g, _)| g);
        v.into_iter().map(|(_, l)| l).collect()
    }

    /// Rendezvous counters summed over every shard's whole fleet.
    pub fn fleet_stats(&self) -> ServerStats {
        let mut total = ServerStats::default();
        for m in &self.shards {
            let shard = lock(m);
            for &node in &shard.servers {
                let s = shard.sim.device::<HostDevice>(node).app::<RendezvousServer>().stats();
                total.add(&s);
            }
        }
        total
    }

    /// Metrics registries merged in shard order (empty when metrics were
    /// not enabled in the config).
    pub fn merged_metrics(&self) -> MetricsSnapshot {
        let mut total = MetricsSnapshot::default();
        for m in &self.shards {
            total.merge(&lock(m).sim.metrics_snapshot());
        }
        total
    }

    /// One line per session in global order — the byte-identity artifact
    /// for determinism checks across shard layouts and worker counts.
    pub fn report(&self) -> String {
        let mut lines: Vec<(usize, String)> = Vec::with_capacity(self.cfg.sessions);
        for m in &self.shards {
            for sess in &lock(m).sessions {
                let when = match sess.resolved_at {
                    Some(at) => format!("{at}"),
                    None => "-".to_string(),
                };
                lines.push((
                    sess.global,
                    format!("m{} {} @{}", sess.global, sess.outcome.label(), when),
                ));
            }
        }
        lines.sort_by_key(|&(g, _)| g);
        let mut out = String::new();
        for (_, line) in lines {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

/// Locks a shard, treating poisoning (a prior worker panic) as fatal.
fn lock(m: &Mutex<Shard>) -> std::sync::MutexGuard<'_, Shard> {
    m.lock().expect("shard worker panicked") // punch-lint: allow(P001) poisoned lock only follows a worker panic, which is already fatal
}

/// Runs `f` against a client node's [`UdpPeer`] with a live [`Os`].
fn with_peer<R>(sim: &mut Sim, node: NodeId, f: impl FnOnce(&mut UdpPeer, &mut Os<'_, '_>) -> R) -> R {
    sim.with_node(node, |dev, ctx| {
        let host = dev.downcast_mut::<HostDevice>().expect("node is a host"); // punch-lint: allow(P001) typed-accessor contract: shard builder created the node as a host
        host.with_app::<UdpPeer, R>(ctx, f)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_world(sessions: usize, shards: usize) -> ShardedWorld {
        let mut cfg = ShardConfig::new(42, sessions);
        cfg.shards = shards;
        let mut w = ShardedWorld::build(&cfg);
        w.run();
        w
    }

    #[test]
    fn small_population_resolves_with_expected_mix() {
        let w = run_world(10, 2);
        let c = w.outcome_counts();
        assert_eq!(c.pending, 0);
        assert_eq!(c.direct + c.relay + c.failed, 10);
        // Nine port-restricted pairs punch directly; whatever the tenth
        // (symmetric) pair does, it must resolve somehow.
        assert!(c.direct >= 9, "direct={c:?}");
    }

    #[test]
    fn report_is_identical_across_shard_layouts() {
        let one = run_world(12, 1);
        let four = run_world(12, 4);
        assert_eq!(one.report(), four.report());
        assert_eq!(one.outcome_counts(), four.outcome_counts());
    }

    #[test]
    fn waves_release_everyone() {
        let mut cfg = ShardConfig::new(7, 9);
        cfg.shards = 3;
        cfg.waves = 3;
        let mut w = ShardedWorld::build(&cfg);
        w.run();
        let c = w.outcome_counts();
        assert_eq!(c.pending, 0);
        assert_eq!(c.direct + c.relay + c.failed, 9);
    }
}
