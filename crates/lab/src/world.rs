//! Topology construction.

use punch_nat::{NatBehavior, NatDevice};
use punch_net::{Cidr, Endpoint, FaultPlan, LinkId, LinkSpec, NodeId, Router, Sim, SimTime, FAULT_RESTART};
use punch_rendezvous::{RendezvousServer, ServerConfig};
use punch_transport::{App, HostDevice, Os, StackConfig};
use std::net::Ipv4Addr;

/// The paper's example addresses (Figure 5 / Figure 6).
pub mod addrs {
    use std::net::Ipv4Addr;

    /// Rendezvous server S.
    pub const SERVER: Ipv4Addr = Ipv4Addr::new(18, 181, 0, 31);
    /// NAT A's public address.
    pub const NAT_A: Ipv4Addr = Ipv4Addr::new(155, 99, 25, 11);
    /// NAT B's public address.
    pub const NAT_B: Ipv4Addr = Ipv4Addr::new(138, 76, 29, 7);
    /// Client A's private address.
    pub const CLIENT_A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    /// Client B's private address (a different private realm in Fig. 5,
    /// the same realm in Fig. 4 — contexts differ, the octets match the
    /// paper).
    pub const CLIENT_B: Ipv4Addr = Ipv4Addr::new(10, 1, 1, 3);
    /// NAT A's "semi-public" address inside the ISP realm (Fig. 6).
    pub const ISP_NAT_A: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 1);
    /// NAT B's "semi-public" address inside the ISP realm (Fig. 6).
    pub const ISP_NAT_B: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 2);
}

/// Where a client attaches.
enum Attach {
    Nat(usize),
    Public,
}

struct ClientSpec {
    ip: Ipv4Addr,
    attach: Attach,
    app: Box<dyn App>,
    stack: StackConfig,
    link: Option<LinkSpec>,
}

struct NatSpec {
    behavior: NatBehavior,
    public_ips: Vec<Ipv4Addr>,
    parent: Option<usize>,
}

struct ServerSpec {
    ip: Ipv4Addr,
    app: Box<dyn App>,
    stack: StackConfig,
}

/// An application plus the stack configuration of its host.
pub struct PeerSetup {
    /// The application to run.
    pub app: Box<dyn App>,
    /// Host stack configuration (defaults to [`StackConfig::fast`]).
    pub stack: StackConfig,
}

impl PeerSetup {
    /// Wraps an app with the fast stack configuration.
    pub fn new(app: impl App + 'static) -> Self {
        PeerSetup {
            app: Box::new(app),
            stack: StackConfig::fast(),
        }
    }

    /// Overrides the host stack configuration.
    pub fn with_stack(mut self, stack: StackConfig) -> Self {
        self.stack = stack;
        self
    }
}

/// A built topology.
pub struct World {
    /// The simulation.
    pub sim: Sim,
    /// The backbone router.
    pub internet: NodeId,
    /// Server nodes, in declaration order.
    pub servers: Vec<NodeId>,
    /// NAT nodes, in declaration order.
    pub nats: Vec<NodeId>,
    /// Client nodes, in declaration order.
    pub clients: Vec<NodeId>,
}

impl World {
    /// Immutable access to a host's application, downcast to `T`.
    pub fn app<T: App>(&self, node: NodeId) -> &T {
        self.sim.device::<HostDevice>(node).app::<T>()
    }

    /// Runs `f` against a host's application with a live [`Os`].
    pub fn with_app<T: App, R>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut T, &mut Os<'_, '_>) -> R,
    ) -> R {
        self.sim.with_node(node, |dev, ctx| {
            let host = dev.downcast_mut::<HostDevice>().expect("node is a host"); // punch-lint: allow(P001) typed-accessor contract: caller names a node it created as a host
            host.with_app::<T, R>(ctx, f)
        })
    }

    /// Runs until `pred` over the app on `node` holds, or `deadline`
    /// passes; returns whether the predicate was met.
    pub fn run_until_app<T: App>(
        &mut self,
        node: NodeId,
        deadline: SimTime,
        mut pred: impl FnMut(&T) -> bool,
    ) -> bool {
        self.sim.run_while(deadline, |sim| {
            pred(sim.device::<HostDevice>(node).app::<T>())
        })
    }

    /// The NAT device on `node` (must be one of `self.nats`).
    pub fn nat(&self, node: NodeId) -> &NatDevice {
        self.sim.device::<NatDevice>(node)
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// The link connecting `node` to the rest of the topology (its
    /// iface-0 uplink: a client's access link, a NAT's public link, a
    /// server's backbone link). Pass it to [`FaultPlan`] builders or
    /// [`Sim::link_mut`].
    pub fn uplink(&self, node: NodeId) -> LinkId {
        self.sim.link_of(node, 0)
    }

    /// Schedules every step of a fault plan onto the simulation.
    pub fn apply_faults(&mut self, plan: &FaultPlan) {
        plan.apply(&mut self.sim);
    }

    /// Reboots the NAT on `node` at the current instant: its tables
    /// flush and its port pool moves, so every mapping through it dies.
    /// Takes effect when the simulation next runs.
    pub fn reboot_nat(&mut self, node: NodeId) {
        let now = self.sim.now();
        self.sim.schedule_device_fault(now, node, FAULT_RESTART);
    }

    /// Swaps the NAT behavior on `node` (e.g. clearing a restrictive
    /// NAT to let a relayed pair upgrade to a direct path). Existing
    /// mappings survive; only new allocations see the new behavior.
    pub fn set_nat_behavior(&mut self, node: NodeId, behavior: NatBehavior) {
        self.sim.device_mut::<NatDevice>(node).set_behavior(behavior);
    }

    /// Restarts the rendezvous server on `node` at the current instant:
    /// all registrations and relay state are lost. Takes effect when
    /// the simulation next runs.
    pub fn restart_server(&mut self, node: NodeId) {
        let now = self.sim.now();
        self.sim.schedule_device_fault(now, node, FAULT_RESTART);
    }
}

/// Builds arbitrary experiment topologies.
///
/// Declaration order matters only for nesting: a NAT's parent must be
/// declared before it.
pub struct WorldBuilder {
    seed: u64,
    wan: LinkSpec,
    lan: LinkSpec,
    servers: Vec<ServerSpec>,
    nats: Vec<NatSpec>,
    clients: Vec<ClientSpec>,
    faults: Option<FaultPlan>,
    metrics: bool,
}

impl WorldBuilder {
    /// Starts a topology with the given determinism seed.
    pub fn new(seed: u64) -> Self {
        WorldBuilder {
            seed,
            wan: LinkSpec::wan(),
            lan: LinkSpec::lan(),
            servers: Vec::new(),
            nats: Vec::new(),
            clients: Vec::new(),
            faults: None,
            metrics: false,
        }
    }

    /// Enables the simulation's metrics registry (see
    /// [`punch_net::Sim::enable_metrics`]). Off by default; enabling it
    /// never changes simulation behaviour, only records it.
    pub fn metrics(mut self) -> Self {
        self.metrics = true;
        self
    }

    /// Schedules a fault plan to be applied as soon as the topology is
    /// built. Link ids are assigned in connect order: server uplinks
    /// first, then NAT uplinks, then client access links — or use
    /// [`World::uplink`] after building for by-node lookup.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Sets the backbone link profile (server/NAT to router).
    pub fn wan(mut self, spec: LinkSpec) -> Self {
        self.wan = spec;
        self
    }

    /// Sets the private-side link profile (client to NAT).
    pub fn lan(mut self, spec: LinkSpec) -> Self {
        self.lan = spec;
        self
    }

    /// Adds a public server host; returns its index.
    pub fn server(&mut self, ip: Ipv4Addr, app: impl App + 'static) -> usize {
        self.servers.push(ServerSpec {
            ip,
            app: Box::new(app),
            stack: StackConfig::default(),
        });
        self.servers.len() - 1
    }

    /// Adds a top-level NAT; returns its index.
    pub fn nat(&mut self, behavior: NatBehavior, public_ip: Ipv4Addr) -> usize {
        self.nats.push(NatSpec {
            behavior,
            public_ips: vec![public_ip],
            parent: None,
        });
        self.nats.len() - 1
    }

    /// Adds a NAT whose public side lives inside `parent`'s private realm
    /// (multi-level NAT, Figure 6).
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not an earlier NAT index.
    pub fn nat_behind(
        &mut self,
        behavior: NatBehavior,
        realm_ip: Ipv4Addr,
        parent: usize,
    ) -> usize {
        assert!(
            parent < self.nats.len(),
            "parent NAT must be declared first"
        );
        self.nats.push(NatSpec {
            behavior,
            public_ips: vec![realm_ip],
            parent: Some(parent),
        });
        self.nats.len() - 1
    }

    /// Adds a client behind NAT `nat`; returns its index.
    pub fn client(&mut self, ip: Ipv4Addr, nat: usize, setup: PeerSetup) -> usize {
        assert!(nat < self.nats.len(), "client's NAT must be declared first");
        self.clients.push(ClientSpec {
            ip,
            attach: Attach::Nat(nat),
            app: setup.app,
            stack: setup.stack,
            link: None,
        });
        self.clients.len() - 1
    }

    /// Adds a client behind NAT `nat` with a specific access link
    /// (e.g. to skew punch timing for §4.3/§5.2 experiments).
    pub fn client_linked(
        &mut self,
        ip: Ipv4Addr,
        nat: usize,
        setup: PeerSetup,
        link: LinkSpec,
    ) -> usize {
        assert!(nat < self.nats.len(), "client's NAT must be declared first");
        self.clients.push(ClientSpec {
            ip,
            attach: Attach::Nat(nat),
            app: setup.app,
            stack: setup.stack,
            link: Some(link),
        });
        self.clients.len() - 1
    }

    /// Adds a client attached directly to the public Internet.
    pub fn public_client(&mut self, ip: Ipv4Addr, setup: PeerSetup) -> usize {
        self.clients.push(ClientSpec {
            ip,
            attach: Attach::Public,
            app: setup.app,
            stack: setup.stack,
            link: None,
        });
        self.clients.len() - 1
    }

    /// Materializes the topology.
    pub fn build(self) -> World {
        let mut sim = Sim::new(self.seed);
        if self.metrics {
            sim.enable_metrics();
        }
        let internet = sim.add_node("internet", Box::new(Router::new()));
        let mut routes: Vec<(Cidr, usize)> = Vec::new();

        let mut servers = Vec::new();
        for (i, s) in self.servers.into_iter().enumerate() {
            let node = sim.add_node(
                format!("s{i}"),
                Box::new(HostDevice::new(s.ip, s.stack, s.app)),
            );
            let (riface, _) = sim.connect(internet, node, self.wan);
            routes.push((Cidr::host(s.ip), riface));
            servers.push(node);
        }

        let mut nats = Vec::new();
        for (i, n) in self.nats.into_iter().enumerate() {
            let node = sim.add_node(
                format!("nat{i}"),
                Box::new(NatDevice::new(n.behavior, n.public_ips.clone())),
            );
            match n.parent {
                None => {
                    // NAT's first link is its public side (iface 0).
                    let (nat_iface, riface) = sim.connect(node, internet, self.wan);
                    debug_assert_eq!(nat_iface, 0, "NAT public side must be iface 0");
                    for ip in &n.public_ips {
                        routes.push((Cidr::host(*ip), riface));
                    }
                }
                Some(p) => {
                    // A nested NAT's public side hangs off its parent's
                    // private realm; the parent learns the child's realm
                    // address from the child's outbound traffic.
                    let parent_node = nats[p];
                    let (nat_iface, _) = sim.connect(node, parent_node, self.lan);
                    debug_assert_eq!(nat_iface, 0, "child NAT public side must be iface 0");
                }
            }
            nats.push(node);
        }

        let mut clients = Vec::new();
        for (i, c) in self.clients.into_iter().enumerate() {
            let node = sim.add_node(
                format!("c{i}"),
                Box::new(HostDevice::new(c.ip, c.stack, c.app)),
            );
            match c.attach {
                Attach::Nat(n) => {
                    sim.connect(nats[n], node, c.link.unwrap_or(self.lan));
                }
                Attach::Public => {
                    let (riface, _) = sim.connect(internet, node, c.link.unwrap_or(self.wan));
                    routes.push((Cidr::host(c.ip), riface));
                }
            }
            clients.push(node);
        }

        {
            let router = sim.device_mut::<Router>(internet);
            for (cidr, iface) in routes {
                router.add_route(cidr, iface);
            }
        }
        if let Some(plan) = &self.faults {
            plan.apply(&mut sim);
        }
        World {
            sim,
            internet,
            servers,
            nats,
            clients,
        }
    }
}

/// A canonical two-client scenario with one rendezvous server.
pub struct Scenario {
    /// The topology.
    pub world: World,
    /// The rendezvous server node.
    pub server: NodeId,
    /// Client A's node.
    pub a: NodeId,
    /// Client B's node.
    pub b: NodeId,
}

impl Scenario {
    /// The rendezvous server's well-known endpoint.
    pub fn server_endpoint() -> Endpoint {
        Endpoint::new(addrs::SERVER, 1234)
    }
}

/// Builds Figure 4 (§3.3): clients A and B behind one **common NAT**.
pub fn fig4(seed: u64, nat: NatBehavior, a: PeerSetup, b: PeerSetup) -> Scenario {
    let mut wb = WorldBuilder::new(seed);
    wb.server(
        addrs::SERVER,
        RendezvousServer::new(ServerConfig::default()),
    );
    let n = wb.nat(nat, addrs::NAT_A);
    wb.client(addrs::CLIENT_A, n, a);
    wb.client(Ipv4Addr::new(10, 0, 0, 2), n, b);
    let world = wb.build();
    Scenario {
        server: world.servers[0],
        a: world.clients[0],
        b: world.clients[1],
        world,
    }
}

/// Builds Figure 5 (§3.4): clients A and B behind **different NATs**,
/// using the paper's example addresses (155.99.25.11 / 138.76.29.7).
pub fn fig5(
    seed: u64,
    nat_a: NatBehavior,
    nat_b: NatBehavior,
    a: PeerSetup,
    b: PeerSetup,
) -> Scenario {
    let mut wb = WorldBuilder::new(seed);
    wb.server(
        addrs::SERVER,
        RendezvousServer::new(ServerConfig::default()),
    );
    let na = wb.nat(nat_a, addrs::NAT_A);
    let nb = wb.nat(nat_b, addrs::NAT_B);
    wb.client(addrs::CLIENT_A, na, a);
    wb.client(addrs::CLIENT_B, nb, b);
    let world = wb.build();
    Scenario {
        server: world.servers[0],
        a: world.clients[0],
        b: world.clients[1],
        world,
    }
}

/// Builds Figure 6 (§3.5): consumer NATs A and B behind a common **ISP
/// NAT C**; only C has a globally routable address, so punching requires
/// C's hairpin support.
pub fn fig6(
    seed: u64,
    nat_c: NatBehavior,
    nat_a: NatBehavior,
    nat_b: NatBehavior,
    a: PeerSetup,
    b: PeerSetup,
) -> Scenario {
    let mut wb = WorldBuilder::new(seed);
    wb.server(
        addrs::SERVER,
        RendezvousServer::new(ServerConfig::default()),
    );
    let nc = wb.nat(nat_c, addrs::NAT_A);
    let na = wb.nat_behind(nat_a, addrs::ISP_NAT_A, nc);
    let nb = wb.nat_behind(nat_b, addrs::ISP_NAT_B, nc);
    wb.client(addrs::CLIENT_A, na, a);
    wb.client(addrs::CLIENT_B, nb, b);
    let world = wb.build();
    Scenario {
        server: world.servers[0],
        a: world.clients[0],
        b: world.clients[1],
        world,
    }
}
