//! Deterministic parallel experiment runner.
//!
//! Every experiment in this workspace is a fan-out of **independent**
//! simulations: each task owns its own [`punch_net::Sim`] seeded from
//! task-local data, so tasks share no state and their results depend
//! only on their inputs — never on scheduling. That makes parallelism
//! safe to bolt on *after the fact*: [`run`] executes the tasks on a
//! small worker pool and returns results **in task order**, so output
//! is byte-identical to the sequential run for any worker count.
//!
//! Design:
//!
//! - [`std::thread::scope`] workers pull task indices from a single
//!   [`AtomicUsize`] — classic work-stealing-free chunkless queue, so
//!   an expensive straggler doesn't serialize a whole chunk behind it.
//! - Each result is written into its task's dedicated slot; the caller
//!   sees `results[i] == f(i, &tasks[i])` regardless of which worker
//!   ran it or when.
//! - A panic in any task propagates to the caller (the scope re-raises
//!   it on join), matching the sequential failure mode.
//!
//! Worker count comes from the `PUNCH_JOBS` environment variable when
//! set (minimum 1), otherwise [`std::thread::available_parallelism`].
//! `PUNCH_JOBS=1` recovers the exact sequential execution on the
//! calling thread — handy for profiling and for the determinism
//! regression tests in `punch-natcheck`.

use punch_net::MetricsSnapshot;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Returns the worker count [`run`] will use: `PUNCH_JOBS` if set to a
/// positive integer, else the machine's available parallelism.
pub fn jobs() -> usize {
    parse_jobs(std::env::var("PUNCH_JOBS").ok().as_deref()).unwrap_or_else(default_jobs)
}

/// Returns the machine's detected parallelism, ignoring `PUNCH_JOBS`.
/// Benchmarks record this next to the effective worker count so a
/// "speedup" measured on a single-core host is recognizable as such.
pub fn detected_cores() -> usize {
    default_jobs()
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn parse_jobs(var: Option<&str>) -> Option<usize> {
    var.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// Runs `f(i, &tasks[i])` for every task on the default worker pool
/// (see [`jobs`]) and returns the results in task order.
pub fn run<T, R, F>(tasks: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_with_workers(tasks, jobs(), f)
}

/// Convenience for index-only fan-outs: runs `f(i)` for `i in 0..n` on
/// the default worker pool and returns results in index order.
pub fn run_n<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    run(&indices, |_, &i| f(i))
}

/// [`run`] with an explicit worker count. Results are in task order for
/// any `workers >= 1`; the determinism tests exercise this directly.
pub fn run_with_workers<T, R, F>(tasks: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.max(1).min(n);
    if workers == 1 {
        // Pure sequential path: no threads, no locks, same results.
        return tasks.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(i, &tasks[i]);
                *slots[i].lock().unwrap() = Some(result); // punch-lint: allow(P001) lock is poisoned only if another worker already panicked; propagate it
            });
        }
        // Scope joins every worker here and re-raises the first panic.
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("worker panicked while storing a result") // punch-lint: allow(P001) lock is poisoned only if a worker already panicked; propagate it
                .expect("every claimed task stores exactly one result") // punch-lint: allow(P001) the claim counter guarantees every slot was filled exactly once
        })
        .collect()
}

/// Runs metrics-producing tasks on the default worker pool and merges
/// their [`MetricsSnapshot`] shards **in task order**.
///
/// Each task returns its result plus the snapshot of its own private
/// `Sim`; because the merge folds shards by task index — never by
/// completion order — the combined snapshot (and its JSON export) is
/// byte-identical for any worker count, same as the results vector.
pub fn run_merge_metrics<T, R, F>(tasks: &[T], f: F) -> (Vec<R>, MetricsSnapshot)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> (R, MetricsSnapshot) + Sync,
{
    run_merge_metrics_with_workers(tasks, jobs(), f)
}

/// [`run_merge_metrics`] with an explicit worker count.
pub fn run_merge_metrics_with_workers<T, R, F>(
    tasks: &[T],
    workers: usize,
    f: F,
) -> (Vec<R>, MetricsSnapshot)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> (R, MetricsSnapshot) + Sync,
{
    let pairs = run_with_workers(tasks, workers, f);
    let mut merged = MetricsSnapshot::default();
    let mut results = Vec::with_capacity(pairs.len());
    for (r, shard) in pairs {
        merged.merge(&shard);
        results.push(r);
    }
    (results, merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_task_order_for_any_worker_count() {
        let tasks: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = tasks.iter().map(|&t| t * t + 1).collect();
        for workers in [1, 2, 3, 8, 64, 1000] {
            let got = run_with_workers(&tasks, workers, |_, &t| t * t + 1);
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn closure_sees_matching_index_and_task() {
        let tasks: Vec<usize> = (0..100).map(|i| i * 10).collect();
        let got = run_with_workers(&tasks, 4, |i, &t| {
            assert_eq!(t, i * 10);
            i
        });
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn empty_task_list_yields_empty_results() {
        let got: Vec<u32> = run_with_workers(&[] as &[u8], 8, |_, _| 1);
        assert!(got.is_empty());
    }

    #[test]
    fn run_n_covers_every_index_once() {
        let got = run_n(50, |i| i * 3);
        assert_eq!(got, (0..50).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_with_workers(&[0u32, 1, 2, 3], 2, |_, &t| {
                if t == 2 {
                    panic!("task failure");
                }
                t
            })
        }));
        assert!(result.is_err(), "panic in a task must reach the caller");
    }

    #[test]
    fn parse_jobs_accepts_positive_integers_only() {
        assert_eq!(parse_jobs(Some("4")), Some(4));
        assert_eq!(parse_jobs(Some(" 16 ")), Some(16));
        assert_eq!(parse_jobs(Some("0")), None);
        assert_eq!(parse_jobs(Some("-2")), None);
        assert_eq!(parse_jobs(Some("all")), None);
        assert_eq!(parse_jobs(None), None);
    }

    #[test]
    fn jobs_is_at_least_one() {
        assert!(jobs() >= 1);
    }

    #[test]
    fn merged_metrics_identical_for_any_worker_count() {
        use punch_net::{MetricKey, Metrics};
        use std::time::Duration;
        let tasks: Vec<u64> = (0..37).collect();
        let shard = |_i: usize, &t: &u64| {
            let mut m = Metrics::new();
            m.inc_by(MetricKey::plain("task.count"), 1);
            m.inc_by(MetricKey::labeled("task.value", "sum"), t);
            m.observe(MetricKey::plain("task.work"), Duration::from_millis(t));
            (t, m.snapshot())
        };
        let (seq_results, seq_merged) = run_merge_metrics_with_workers(&tasks, 1, shard);
        assert_eq!(seq_merged.counter("task.count", ""), 37);
        for workers in [2, 3, 8] {
            let (results, merged) = run_merge_metrics_with_workers(&tasks, workers, shard);
            assert_eq!(results, seq_results, "workers={workers}");
            assert_eq!(merged, seq_merged, "workers={workers}");
            assert_eq!(merged.to_json(), seq_merged.to_json(), "workers={workers}");
        }
    }
}
