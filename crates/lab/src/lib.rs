//! # punch-lab — experiment topologies and harness helpers
//!
//! Reusable builders for the network scenarios the paper analyzes:
//!
//! - [`WorldBuilder`] — arbitrary topologies: one backbone router, public
//!   servers, (optionally nested) NATs, and clients.
//! - [`fig4`] — two clients behind a **common NAT** (§3.3, Figure 4).
//! - [`fig5`] — two clients behind **different NATs** (§3.4, Figure 5),
//!   using the paper's exact example addresses.
//! - [`fig6`] — **multi-level NAT**: consumer NATs behind an ISP NAT
//!   (§3.5, Figure 6), where hairpin support on the top NAT decides the
//!   outcome.
//!
//! All builders return a [`World`] wrapping the [`punch_net::Sim`], with helpers to
//! reach into host applications.
//!
//! The [`par`] module runs fan-outs of independent simulations on a
//! worker pool while keeping results in task order, so experiment
//! output stays byte-identical to a sequential run.
//!
//! The [`chaos`] module is a seeded chaos-search harness: it samples
//! random fault schedules against the Figure-5 topology, checks
//! liveness and replay-determinism invariants, and shrinks failing
//! schedules to minimal replayable fault plans.
//!
//! The [`adversary`] module puts seeded attacker nodes *inside* the
//! simulation — mapping-exhaustion floods, off-path RST/forgery
//! injection, rendezvous-abuse storms — and measures the victim's
//! punch success and recovery latency with each paired defense off
//! and on.
//!
//! The [`shard`] module scales the Figure-5 scenario to populations of
//! 10^5–10^6 endpoints by partitioning sessions across per-shard sims
//! advanced in parallel, with deterministic epoch-boundary handoff.

pub mod adversary;
pub mod chaos;
pub mod par;
pub mod shard;
pub mod world;

#[cfg(test)]
mod tests;

pub use adversary::{
    add_spoofer, run_intro_forgery, run_mapping_flood, run_reg_squat, run_rst_inject, spoof_at,
    AbuseAction, AbuseBot, AttackReport, FloodBot, SpoofBot,
};
pub use shard::{OutcomeCounts, SessionOutcome, ShardConfig, ShardedWorld};
pub use world::{addrs, fig4, fig5, fig6, PeerSetup, Scenario, World, WorldBuilder};
