//! The §6.3 paired contention check: detecting NATs that break only when
//! two clients share a private port.

use punch_nat::NatBehavior;
use punch_natcheck::{check_nat, check_nat_pair};

#[test]
fn well_behaved_nat_is_consistent_under_contention() {
    let pair = check_nat_pair(NatBehavior::well_behaved(), 1);
    assert_eq!(pair.consistent_under_contention(), Some(true));
    assert!(!pair.hidden_contention_failure());
}

#[test]
fn contention_breaking_nat_fools_single_client_check_but_not_the_pair() {
    let behavior = NatBehavior {
        contention_breaks_consistency: true,
        ..NatBehavior::well_behaved()
    };
    // Single-client NAT Check (what Table 1 ran): looks perfectly fine.
    let single = check_nat(behavior.clone(), 2);
    assert_eq!(
        single.udp_hole_punching(),
        Some(true),
        "the §6.3 blind spot"
    );
    // The paired check exposes it.
    let pair = check_nat_pair(behavior, 2);
    assert_eq!(
        pair.first.udp_consistent,
        Some(true),
        "first client still fine"
    );
    assert_eq!(
        pair.second.udp_consistent,
        Some(false),
        "second client degraded to symmetric"
    );
    assert!(pair.hidden_contention_failure());
    assert_eq!(pair.consistent_under_contention(), Some(false));
}

#[test]
fn symmetric_nat_fails_both_clients() {
    let pair = check_nat_pair(NatBehavior::symmetric(), 3);
    assert_eq!(pair.first.udp_consistent, Some(false));
    assert_eq!(pair.second.udp_consistent, Some(false));
    assert!(
        !pair.hidden_contention_failure(),
        "nothing hidden: plainly symmetric"
    );
}

#[test]
fn preserving_allocator_gives_second_client_a_different_port() {
    // Port preservation under contention: the second client cannot get
    // its private port preserved (taken), but translation stays
    // consistent — this must NOT be flagged as contention breakage.
    let behavior =
        NatBehavior::well_behaved().with_port_alloc(punch_nat::PortAllocation::Preserving);
    let pair = check_nat_pair(behavior, 4);
    assert_eq!(pair.consistent_under_contention(), Some(true));
    let (f, _) = pair.first.udp_public.unwrap();
    let (s, _) = pair.second.udp_public.unwrap();
    assert_ne!(f.port, s.port, "distinct public ports for the two clients");
}
