//! Property tests for the NAT Check wire codec: round-trips for
//! arbitrary messages, strict rejection of padded datagrams, no panics
//! on byte soup, and bounded poison-on-overflow reassembly.

use proptest::prelude::*;
use punch_natcheck::{CheckFrames, CheckMsg, InboundStatus, MAX_CHECK_BUFFER};
use punch_net::Endpoint;

fn arb_endpoint() -> impl Strategy<Value = Endpoint> {
    (any::<[u8; 4]>(), any::<u16>()).prop_map(|(o, p)| Endpoint::new(o.into(), p))
}

fn arb_status() -> impl Strategy<Value = InboundStatus> {
    prop_oneof![
        Just(InboundStatus::InProgress),
        Just(InboundStatus::Connected),
        Just(InboundStatus::Refused),
    ]
}

fn arb_check_msg() -> impl Strategy<Value = CheckMsg> {
    prop_oneof![
        any::<u64>().prop_map(|token| CheckMsg::UdpProbe { token }),
        (any::<u64>(), arb_endpoint(), any::<u8>()).prop_map(|(token, observed, server)| {
            CheckMsg::UdpEcho {
                token,
                observed,
                server,
            }
        }),
        (arb_endpoint(), any::<u64>())
            .prop_map(|(client, token)| CheckMsg::ForwardUdp { client, token }),
        any::<u64>().prop_map(|token| CheckMsg::TcpProbe { token }),
        (any::<u64>(), arb_endpoint(), any::<u8>()).prop_map(|(token, observed, server)| {
            CheckMsg::TcpEcho {
                token,
                observed,
                server,
            }
        }),
        (arb_endpoint(), any::<u64>())
            .prop_map(|(client, token)| CheckMsg::TcpInboundReq { client, token }),
        (any::<u64>(), arb_status())
            .prop_map(|(token, status)| CheckMsg::TcpGoAhead { token, status }),
        any::<u64>().prop_map(|token| CheckMsg::HairpinProbe { token }),
    ]
}

proptest! {
    #[test]
    fn roundtrip_any_check_msg(msg in arb_check_msg()) {
        let enc = msg.encode();
        prop_assert_eq!(CheckMsg::decode(&enc), Some(msg));
    }

    /// Strict framing: a valid message with anything appended is
    /// hostile, not trimmed.
    #[test]
    fn trailing_bytes_are_rejected(
        msg in arb_check_msg(),
        pad in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let mut enc = msg.encode().to_vec();
        enc.extend_from_slice(&pad);
        prop_assert_eq!(CheckMsg::decode(&enc), None);
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = CheckMsg::decode(&bytes);
    }

    /// Framed reassembly is chunking-invariant: however the stream is
    /// sliced, the same messages come out in order.
    #[test]
    fn frame_reassembly_is_chunking_invariant(
        msgs in proptest::collection::vec(arb_check_msg(), 1..8),
        chunk in 1usize..16,
    ) {
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&m.encode_frame());
        }
        let mut frames = CheckFrames::default();
        let mut out = Vec::new();
        for c in stream.chunks(chunk) {
            frames.push(c);
            while let Some(m) = frames.next_message() {
                out.push(m);
            }
        }
        prop_assert!(!frames.overflowed());
        prop_assert_eq!(out, msgs);
    }

    /// Outrunning the buffer cap poisons the reassembler: it yields
    /// nothing, reports the overflow, and ignores all further input
    /// rather than buffering without bound.
    #[test]
    fn overflow_poisons_the_reassembler(
        extra in 1usize..64,
        later in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let mut frames = CheckFrames::default();
        frames.push(&vec![0u8; MAX_CHECK_BUFFER + extra]);
        prop_assert!(frames.overflowed());
        prop_assert_eq!(frames.next_message(), None);
        frames.push(&later);
        frames.push(&CheckMsg::UdpProbe { token: 1 }.encode_frame());
        prop_assert!(frames.overflowed());
        prop_assert_eq!(frames.next_message(), None);
    }

    /// Arbitrary byte soup through the reassembler never panics and
    /// never loops forever.
    #[test]
    fn reassembler_survives_garbage(
        chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..8),
    ) {
        let mut frames = CheckFrames::default();
        for c in &chunks {
            frames.push(c);
            for _ in 0..64 {
                if frames.next_message().is_none() {
                    break;
                }
            }
        }
    }
}
