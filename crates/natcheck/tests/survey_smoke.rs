//! Smoke test for the Table 1 survey machinery (capped population); the
//! full 380-device run lives in the bench harness (`table1` binary).

use punch_natcheck::run_survey;

#[test]
fn capped_survey_produces_sane_rows() {
    let result = run_survey(1, Some(3));
    assert_eq!(result.rows.len(), 13, "12 named vendors + (other)");
    for row in &result.rows {
        assert!(row.udp.1 <= 3);
        assert!(row.udp.0 <= row.udp.1);
        assert!(row.udp_hairpin.0 <= row.udp_hairpin.1);
        assert!(row.tcp.0 <= row.tcp.1);
        assert!(row.tcp_hairpin.0 <= row.tcp_hairpin.1);
    }
    let total_udp: u32 = result.rows.iter().map(|r| r.udp.1).sum();
    assert_eq!(result.total.udp.1, total_udp);
    // The formatted table renders without panicking and contains headers.
    let text = result.format();
    assert!(text.contains("Linksys"));
    assert!(text.contains("UDP punch"));
}
