//! E14: NAT Check self-validation — run the tool against NATs with
//! *known* configurations and confirm its verdicts; E15: the §6.3
//! hairpin-pessimism caveat.

use punch_nat::{FilteringPolicy, Hairpin, NatBehavior, TcpUnsolicited};
use punch_natcheck::check_nat;

#[test]
fn well_behaved_nat_passes_everything() {
    let report = check_nat(NatBehavior::well_behaved(), 1);
    assert_eq!(report.udp_hole_punching(), Some(true));
    assert_eq!(
        report.udp_alloc_delta,
        Some(0),
        "cone mapping: one port for both servers"
    );
    assert_eq!(
        report.udp_unsolicited_filtered,
        Some(true),
        "port-restricted filter blocks server 3"
    );
    assert_eq!(report.udp_hairpin, Some(true));
    assert_eq!(report.tcp_hole_punching(), Some(true));
    assert_eq!(
        report.tcp_inbound_syn_passed,
        Some(false),
        "SYN silently dropped"
    );
    assert_eq!(report.tcp_hairpin, Some(true));
}

#[test]
fn symmetric_nat_fails_consistency_checks() {
    let report = check_nat(NatBehavior::symmetric(), 2);
    assert_eq!(report.udp_hole_punching(), Some(false));
    assert_eq!(report.tcp_hole_punching(), Some(false));
    let (o1, o2) = report.udp_public.unwrap();
    assert_ne!(o1, o2, "distinct mappings per server");
    // The default symmetric NAT allocates sequentially, so the measured
    // stride is usable as-is to seed a prediction strategy.
    assert_eq!(
        report.udp_alloc_delta,
        Some(o2.port as i32 - o1.port as i32)
    );
    assert_ne!(report.udp_alloc_delta, Some(0), "symmetric stride is nonzero");
}

#[test]
fn full_cone_shows_no_filtering() {
    let report = check_nat(NatBehavior::full_cone(), 3);
    assert_eq!(report.udp_hole_punching(), Some(true));
    assert_eq!(
        report.udp_unsolicited_filtered,
        Some(false),
        "server 3's reply got through"
    );
    assert_eq!(
        report.tcp_inbound_syn_passed,
        Some(true),
        "unsolicited SYN admitted"
    );
    assert_eq!(report.tcp_hole_punching(), Some(true));
}

#[test]
fn rst_nat_fails_tcp_but_not_udp() {
    let behavior = NatBehavior::well_behaved().with_tcp_unsolicited(TcpUnsolicited::Rst);
    let report = check_nat(behavior, 4);
    assert_eq!(report.udp_hole_punching(), Some(true));
    assert_eq!(report.tcp_consistent, Some(true));
    assert_eq!(
        report.tcp_s3_connect_ok,
        Some(false),
        "server 3 gave up after the RST"
    );
    assert_eq!(report.tcp_hole_punching(), Some(false));
}

#[test]
fn icmp_rejecting_nat_also_fails_tcp_verdict() {
    let behavior = NatBehavior::well_behaved().with_tcp_unsolicited(TcpUnsolicited::IcmpError);
    let report = check_nat(behavior, 5);
    assert_eq!(report.tcp_hole_punching(), Some(false));
}

#[test]
fn no_hairpin_nat_reports_no_hairpin() {
    let behavior = NatBehavior::well_behaved().with_hairpin(Hairpin::None);
    let report = check_nat(behavior, 6);
    assert_eq!(report.udp_hairpin, Some(false));
    assert_eq!(report.tcp_hairpin, Some(false));
    assert_eq!(
        report.udp_hole_punching(),
        Some(true),
        "hairpin does not affect basic punching"
    );
}

#[test]
fn hairpin_filtering_nat_reproduces_the_section_6_3_pessimism() {
    // E15: a NAT that hairpins but treats hairpinned traffic as
    // untrusted. NAT Check's one-sided hairpin test reports "no
    // hairpin", although a full two-way punch (both sides sending) would
    // open the filters and work.
    let behavior = NatBehavior {
        hairpin_filters: true,
        ..NatBehavior::well_behaved()
    };
    assert_eq!(
        behavior.hairpin_udp,
        Hairpin::Full,
        "the NAT genuinely hairpins"
    );
    let report = check_nat(behavior, 7);
    assert_eq!(
        report.udp_hairpin,
        Some(false),
        "NAT Check under-reports hairpin support (§6.3)"
    );
    assert_eq!(report.tcp_hairpin, Some(false));
}

#[test]
fn mangling_nat_corrupts_nat_check_observations() {
    // §6.3's first limitation: NAT Check does not obfuscate payloads, so
    // a payload-mangling NAT rewrites the echoed public address on the
    // way in. Consistency still measures correctly (both echoes are
    // rewritten identically) but the hairpin probe is aimed at a
    // corrupted address and the test under-reports.
    let behavior = NatBehavior::well_behaved().with_payload_mangling();
    let report = check_nat(behavior, 8);
    assert_eq!(report.udp_hole_punching(), Some(true));
    let (o1, _) = report.udp_public.unwrap();
    assert_eq!(
        o1.ip,
        "10.0.0.1".parse::<std::net::Ipv4Addr>().unwrap(),
        "the echoed public address was mangled back into the private one"
    );
    assert_eq!(
        report.udp_hairpin,
        Some(false),
        "hairpin under-reported due to mangling"
    );
}

#[test]
fn address_dependent_filtering_still_reports_filtered() {
    // Restricted cone: server 3's IP was never contacted, so its reply
    // is blocked, same as port-restricted.
    let behavior = NatBehavior {
        filtering: FilteringPolicy::AddressDependent,
        ..NatBehavior::well_behaved()
    };
    let report = check_nat(behavior, 9);
    assert_eq!(report.udp_unsolicited_filtered, Some(true));
    assert_eq!(report.udp_hole_punching(), Some(true));
}

#[test]
fn reports_are_deterministic_per_seed() {
    let a = check_nat(NatBehavior::well_behaved(), 42);
    let b = check_nat(NatBehavior::well_behaved(), 42);
    assert_eq!(a, b);
}
