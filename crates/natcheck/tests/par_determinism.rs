//! Determinism under parallelism: the survey's claim is that per-task
//! seeding — not execution order — carries all the randomness, so the
//! worker count must never show up in the output. These tests are the
//! regression fence for `punch_lab::par` + the survey refactor.

use holepunch::{PeerId, PunchConfig, UdpPeer, UdpPeerConfig};
use proptest::prelude::*;
use punch_lab::{fig5, par, PeerSetup, Scenario};
use punch_nat::{NatBehavior, VENDORS};
use punch_natcheck::run_survey_mutated_with_workers;
use punch_net::seed::derive_seed;
use punch_net::{Duration, FaultPlan, LinkSpec, MetricsSnapshot, SimTime};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::HashSet;

/// A mutation that actually consumes RNG draws, so the test also proves
/// the per-device mutation streams are independent of scheduling.
fn jitter_timeouts(
    b: &mut punch_nat::NatBehavior,
    rng: &mut rand::rngs::StdRng,
) {
    let extra: u64 = rng.gen_range(0..30);
    b.udp_timeout += std::time::Duration::from_secs(extra);
}

#[test]
fn survey_is_byte_identical_for_1_2_and_8_workers() {
    let table: Vec<String> = [1usize, 2, 8]
        .iter()
        .map(|&w| {
            run_survey_mutated_with_workers(2005, Some(2), Some(w), jitter_timeouts).format()
        })
        .collect();
    assert_eq!(table[0], table[1], "1 vs 2 workers");
    assert_eq!(table[0], table[2], "1 vs 8 workers");
    assert!(table[0].contains("Linksys"));
}

#[test]
fn survey_is_identical_across_repeated_runs_on_the_pool() {
    let run = || run_survey_mutated_with_workers(7, Some(2), None, jitter_timeouts).format();
    assert_eq!(run(), run());
}

/// A chaos-hardened peer so the fault plan exercises the full recovery
/// machinery (liveness timers, re-punch backoff, re-registration).
fn resilient_peer(id: u64) -> PeerSetup {
    let mut cfg = UdpPeerConfig::new(PeerId(id), Scenario::server_endpoint());
    cfg.server_keepalive = Duration::from_secs(2);
    cfg.register_retry = Duration::from_secs(1);
    cfg.punch = PunchConfig::resilient();
    cfg.punch.keepalive_interval = Duration::from_secs(1);
    PeerSetup::new(UdpPeer::new(cfg))
}

/// Builds a Figure-5 world, derives a random `FaultPlan` entirely from
/// `seed` (link outages, loss/dup/reorder degradation, NAT and server
/// restarts), runs a punch attempt through the carnage, and fingerprints
/// the run: the packet-level trace plus both peers' event streams. The
/// fingerprint must depend only on `seed`.
fn faulted_run_fingerprint(seed: u64) -> String {
    faulted_run(seed, false).0
}

/// [`faulted_run_fingerprint`] with optional metrics collection; returns
/// the fingerprint plus the run's metrics snapshot (empty when metrics
/// are off). Enabling metrics must never change the fingerprint.
fn faulted_run(seed: u64, metrics: bool) -> (String, MetricsSnapshot) {
    let mut sc = fig5(
        seed,
        NatBehavior::well_behaved(),
        NatBehavior::well_behaved(),
        resilient_peer(1),
        resilient_peer(2),
    );
    sc.world.sim.enable_trace(200_000);
    if metrics {
        sc.world.sim.enable_metrics();
    }

    let links = [
        sc.world.uplink(sc.server),
        sc.world.uplink(sc.world.nats[0]),
        sc.world.uplink(sc.world.nats[1]),
        sc.world.uplink(sc.a),
        sc.world.uplink(sc.b),
    ];
    let nodes = [sc.server, sc.world.nats[0], sc.world.nats[1]];

    // The plan's own RNG stream is derived from the master seed, so the
    // plan shape varies per task but never per run.
    let mut rng = StdRng::seed_from_u64(derive_seed(seed, "fault-plan", 0));
    let mut plan = FaultPlan::new();
    for _ in 0..rng.gen_range(2..6) {
        let at = SimTime::from_millis(rng.gen_range(2_500..10_000));
        let link = links[rng.gen_range(0..links.len())];
        match rng.gen_range(0..4u32) {
            0 => {
                let dur = Duration::from_millis(rng.gen_range(200..2_500));
                plan = plan.outage(at, dur, link);
            }
            1 => {
                let spec = LinkSpec::wan()
                    .with_loss(0.3)
                    .with_duplicate(0.2)
                    .with_reorder(0.2);
                plan = plan.link_set(at, link, spec);
            }
            2 => {
                let node = nodes[rng.gen_range(0..nodes.len())];
                plan = plan.restart(at, node);
            }
            _ => {
                let up = at + Duration::from_millis(rng.gen_range(300..2_000));
                plan = plan.link_down(at, link).link_up(up, link);
            }
        }
    }
    sc.world.apply_faults(&plan);

    sc.world.sim.run_for(Duration::from_secs(2));
    sc.world.with_app::<UdpPeer, _>(sc.a, |p, os| p.connect(os, PeerId(2)));
    sc.world.sim.run_for(Duration::from_secs(14));

    let mut fp = sc.world.sim.trace().expect("trace enabled").dump();
    for node in [sc.a, sc.b] {
        let evs = sc.world.with_app::<UdpPeer, _>(node, |p, _| p.take_events());
        fp.push_str(&format!("{evs:?}\n"));
    }
    let snap = sc.world.sim.metrics_snapshot();
    (fp, snap)
}

#[test]
fn faulted_runs_are_identical_across_worker_counts() {
    let seeds: Vec<u64> = (0..6).collect();
    let runs: Vec<Vec<String>> = [1usize, 2, 8]
        .iter()
        .map(|&w| par::run_with_workers(&seeds, w, |_, &s| faulted_run_fingerprint(s)))
        .collect();
    assert_eq!(runs[0], runs[1], "1 vs 2 workers");
    assert_eq!(runs[0], runs[2], "1 vs 8 workers");
    // Different seeds must produce different carnage, or the comparison
    // above proves nothing.
    assert_ne!(runs[0][0], runs[0][1]);
}

#[test]
fn metrics_collection_never_changes_the_simulation() {
    for seed in [0u64, 3, 11] {
        let (plain, empty) = faulted_run(seed, false);
        let (observed, snap) = faulted_run(seed, true);
        assert_eq!(
            plain, observed,
            "enabling metrics perturbed the run at seed {seed}"
        );
        assert!(empty.is_empty(), "metrics recorded while disabled");
        assert!(!snap.is_empty(), "metrics missing while enabled");
    }
}

#[test]
fn merged_metrics_exports_identical_across_worker_counts() {
    let seeds: Vec<u64> = (0..6).collect();
    let run = |w: usize| par::run_merge_metrics_with_workers(&seeds, w, |_, &s| faulted_run(s, true));
    let (fps1, merged1) = run(1);
    for w in [2usize, 8] {
        let (fps, merged) = run(w);
        assert_eq!(fps, fps1, "fingerprints differ at {w} workers");
        assert_eq!(merged, merged1, "merged snapshot differs at {w} workers");
        assert_eq!(
            merged.to_json(),
            merged1.to_json(),
            "JSON export differs at {w} workers"
        );
    }
    // Same-seed rerun on the same pool: byte-identical export.
    let (_, merged_again) = run(1);
    assert_eq!(merged1.to_json(), merged_again.to_json());
    assert!(!merged1.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any seeded `FaultPlan` replays byte-identically: same seed, same
    /// packet trace and peer events, run after run.
    #[test]
    fn fault_plans_replay_byte_identically(seed in any::<u64>()) {
        prop_assert_eq!(faulted_run_fingerprint(seed), faulted_run_fingerprint(seed));
    }

    /// Metrics snapshots (and their JSON export) replay byte-identically
    /// for the same seed, and collecting them never perturbs the packet
    /// trace or the peers' event streams.
    #[test]
    fn metrics_snapshots_replay_byte_identically(seed in any::<u64>()) {
        let (fp_a, snap_a) = faulted_run(seed, true);
        let (fp_b, snap_b) = faulted_run(seed, true);
        prop_assert_eq!(&fp_a, &fp_b);
        prop_assert_eq!(&snap_a, &snap_b);
        prop_assert_eq!(snap_a.to_json(), snap_b.to_json());
        let (fp_plain, _) = faulted_run(seed, false);
        prop_assert_eq!(fp_plain, fp_b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Per-device seeds never collide across vendors and indices: every
    /// device in the full 380-point survey gets a distinct simulation
    /// seed and a distinct mutation seed, for any master seed.
    #[test]
    fn per_device_seeds_never_collide(master in any::<u64>()) {
        let mut seen = HashSet::new();
        for spec in VENDORS {
            for i in 0..spec.udp.1 as u64 {
                let device_seed = derive_seed(master, spec.name, i);
                prop_assert!(
                    seen.insert(device_seed),
                    "collision at {} #{i}", spec.name
                );
            }
        }
        prop_assert_eq!(seen.len() as u32, VENDORS.iter().map(|v| v.udp.1).sum::<u32>());
    }
}
