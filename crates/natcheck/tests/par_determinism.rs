//! Determinism under parallelism: the survey's claim is that per-task
//! seeding — not execution order — carries all the randomness, so the
//! worker count must never show up in the output. These tests are the
//! regression fence for `punch_lab::par` + the survey refactor.

use proptest::prelude::*;
use punch_nat::VENDORS;
use punch_natcheck::run_survey_mutated_with_workers;
use punch_net::seed::derive_seed;
use rand::Rng;
use std::collections::HashSet;

/// A mutation that actually consumes RNG draws, so the test also proves
/// the per-device mutation streams are independent of scheduling.
fn jitter_timeouts(
    b: &mut punch_nat::NatBehavior,
    rng: &mut rand::rngs::StdRng,
) {
    let extra: u64 = rng.gen_range(0..30);
    b.udp_timeout += std::time::Duration::from_secs(extra);
}

#[test]
fn survey_is_byte_identical_for_1_2_and_8_workers() {
    let table: Vec<String> = [1usize, 2, 8]
        .iter()
        .map(|&w| {
            run_survey_mutated_with_workers(2005, Some(2), Some(w), jitter_timeouts).format()
        })
        .collect();
    assert_eq!(table[0], table[1], "1 vs 2 workers");
    assert_eq!(table[0], table[2], "1 vs 8 workers");
    assert!(table[0].contains("Linksys"));
}

#[test]
fn survey_is_identical_across_repeated_runs_on_the_pool() {
    let run = || run_survey_mutated_with_workers(7, Some(2), None, jitter_timeouts).format();
    assert_eq!(run(), run());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Per-device seeds never collide across vendors and indices: every
    /// device in the full 380-point survey gets a distinct simulation
    /// seed and a distinct mutation seed, for any master seed.
    #[test]
    fn per_device_seeds_never_collide(master in any::<u64>()) {
        let mut seen = HashSet::new();
        for spec in VENDORS {
            for i in 0..spec.udp.1 as u64 {
                let device_seed = derive_seed(master, spec.name, i);
                prop_assert!(
                    seen.insert(device_seed),
                    "collision at {} #{i}", spec.name
                );
            }
        }
        prop_assert_eq!(seen.len() as u32, VENDORS.iter().map(|v| v.udp.1).sum::<u32>());
    }
}
