//! The §6.3 "future version of NAT Check": paired testing with two
//! client hosts behind the same NAT.
//!
//! The paper observes that some NATs "consistently translate the
//! client's private endpoint as long as only one client behind the NAT is
//! using a particular private port number, but switch to symmetric NAT or
//! even worse behaviors if two or more clients with different IP
//! addresses ... try to communicate through the NAT from the same private
//! port number" — and that single-client NAT Check cannot detect this.
//! The authors planned a two-host test mode; this module implements it.

use crate::client::{NatCheckClient, NatCheckReport};
use crate::servers::{CheckServer, ServerRole};
use crate::survey::{S1, S2, S3};
use punch_lab::{PeerSetup, WorldBuilder};
use punch_nat::NatBehavior;
use punch_net::SimTime;
use punch_transport::HostDevice;

/// Result of a paired NAT Check run.
#[derive(Clone, Copy, Debug)]
pub struct PairReport {
    /// The first client's report (it allocated its mappings first).
    pub first: NatCheckReport,
    /// The second client's report, contending for the same private port.
    pub second: NatCheckReport,
}

impl PairReport {
    /// Both clients observed consistent translation: the NAT keeps its
    /// cone behaviour even under private-port contention.
    pub fn consistent_under_contention(&self) -> Option<bool> {
        match (self.first.udp_consistent, self.second.udp_consistent) {
            (Some(a), Some(b)) => Some(a && b),
            _ => None,
        }
    }

    /// The §6.3 blind spot made visible: single-client testing would
    /// pass (the first client looks fine) while contention breaks the
    /// second client.
    pub fn hidden_contention_failure(&self) -> bool {
        self.first.udp_consistent == Some(true) && self.second.udp_consistent == Some(false)
    }
}

/// Runs NAT Check from **two** client hosts behind the same NAT, both
/// using private port 4321 — the test mode §6.3 says a future NAT Check
/// version should add.
pub fn check_nat_pair(behavior: NatBehavior, seed: u64) -> PairReport {
    const SHARED_PORT: u16 = 4321;
    let mut wb = WorldBuilder::new(seed);
    wb.server(S1, CheckServer::new(ServerRole::One));
    wb.server(S2, CheckServer::new(ServerRole::Two { s3: S3 }));
    wb.server(S3, CheckServer::new(ServerRole::Three));
    let nat = wb.nat(behavior, "155.99.25.11".parse().expect("addr")); // punch-lint: allow(P001) hard-coded literal address; parse cannot fail
    let c1 = wb.client(
        "10.0.0.1".parse().expect("addr"), // punch-lint: allow(P001) hard-coded literal address; parse cannot fail
        nat,
        PeerSetup::new(NatCheckClient::new(S1, S2, S3).with_udp_port(SHARED_PORT)),
    );
    let c2 = wb.client(
        "10.0.0.2".parse().expect("addr"), // punch-lint: allow(P001) hard-coded literal address; parse cannot fail
        nat,
        PeerSetup::new(NatCheckClient::new(S1, S2, S3).with_udp_port(SHARED_PORT)),
    );
    let mut world = wb.build();
    let (c1, c2) = (world.clients[c1], world.clients[c2]);
    world.run_until_app::<NatCheckClient>(c1, SimTime::from_secs(120), |c| c.done());
    world.run_until_app::<NatCheckClient>(c2, SimTime::from_secs(120), |c| c.done());
    PairReport {
        first: world
            .sim
            .device::<HostDevice>(c1)
            .app::<NatCheckClient>()
            .report(),
        second: world
            .sim
            .device::<HostDevice>(c2)
            .app::<NatCheckClient>()
            .report(),
    }
}
