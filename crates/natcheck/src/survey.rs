//! The §6.2 survey: NAT Check over sampled vendor populations,
//! regenerating Table 1.

use crate::client::{NatCheckClient, NatCheckReport};
use crate::servers::{CheckServer, ServerRole};
use punch_lab::WorldBuilder;
use punch_nat::{NatBehavior, VendorProfile, VENDORS};
use punch_net::SimTime;
use punch_transport::HostDevice;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::Ipv4Addr;

/// NAT Check server addresses used by the harness.
pub const S1: Ipv4Addr = Ipv4Addr::new(18, 181, 0, 31);
/// Second server.
pub const S2: Ipv4Addr = Ipv4Addr::new(64, 15, 12, 2);
/// Third server.
pub const S3: Ipv4Addr = Ipv4Addr::new(128, 8, 126, 9);

/// Runs the full NAT Check procedure against one NAT configuration and
/// returns the measured report.
pub fn check_nat(behavior: NatBehavior, seed: u64) -> NatCheckReport {
    let mut wb = WorldBuilder::new(seed);
    wb.server(S1, CheckServer::new(ServerRole::One));
    wb.server(S2, CheckServer::new(ServerRole::Two { s3: S3 }));
    wb.server(S3, CheckServer::new(ServerRole::Three));
    let nat = wb.nat(behavior, "155.99.25.11".parse().expect("addr"));
    wb.client(
        "10.0.0.1".parse().expect("addr"),
        nat,
        punch_lab::PeerSetup::new(NatCheckClient::new(S1, S2, S3)),
    );
    let mut world = wb.build();
    let client = world.clients[0];
    world.run_until_app::<NatCheckClient>(client, SimTime::from_secs(120), |c| c.done());
    world
        .sim
        .device::<HostDevice>(client)
        .app::<NatCheckClient>()
        .report()
}

/// One reproduced Table 1 row: `(compatible, tested)` per column.
#[derive(Clone, Debug, Default)]
pub struct SurveyRow {
    /// Vendor name.
    pub vendor: String,
    /// UDP hole punching.
    pub udp: (u32, u32),
    /// UDP hairpin.
    pub udp_hairpin: (u32, u32),
    /// TCP hole punching.
    pub tcp: (u32, u32),
    /// TCP hairpin.
    pub tcp_hairpin: (u32, u32),
}

impl SurveyRow {
    fn pct(k: u32, n: u32) -> f64 {
        if n == 0 {
            0.0
        } else {
            100.0 * k as f64 / n as f64
        }
    }

    /// Formats the row like the paper's table.
    pub fn format(&self) -> String {
        format!(
            "{:<10} {:>3}/{:<3} ({:>3.0}%)  {:>3}/{:<3} ({:>3.0}%)  {:>3}/{:<3} ({:>3.0}%)  {:>3}/{:<3} ({:>3.0}%)",
            self.vendor,
            self.udp.0,
            self.udp.1,
            Self::pct(self.udp.0, self.udp.1),
            self.udp_hairpin.0,
            self.udp_hairpin.1,
            Self::pct(self.udp_hairpin.0, self.udp_hairpin.1),
            self.tcp.0,
            self.tcp.1,
            Self::pct(self.tcp.0, self.tcp.1),
            self.tcp_hairpin.0,
            self.tcp_hairpin.1,
            Self::pct(self.tcp_hairpin.0, self.tcp_hairpin.1),
        )
    }
}

/// The reproduced Table 1.
#[derive(Clone, Debug, Default)]
pub struct SurveyResult {
    /// Per-vendor rows (in the paper's order), then `(other)`.
    pub rows: Vec<SurveyRow>,
    /// The "All Vendors" totals row.
    pub total: SurveyRow,
}

impl SurveyResult {
    /// Renders the whole table.
    pub fn format(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "                 UDP punch      UDP hairpin     TCP punch       TCP hairpin\n",
        );
        for row in &self.rows {
            out.push_str(&row.format());
            out.push('\n');
        }
        out.push_str(&self.total.format());
        out.push('\n');
        out
    }
}

/// Runs NAT Check across every vendor population from Table 1's quotas
/// and measures each sampled device end-to-end.
///
/// `per_device_budget` bounds devices per vendor (use `None` for the
/// paper's full sample sizes; smaller values give a fast smoke survey).
pub fn run_survey(seed: u64, per_vendor_cap: Option<u32>) -> SurveyResult {
    run_survey_mutated(seed, per_vendor_cap, |_, _| {})
}

/// [`run_survey`] with a hook that may mutate each sampled device's
/// behaviour before measurement — the substrate for ablation studies
/// (force payload mangling, hairpin filtering, contention breakage, ...).
pub fn run_survey_mutated(
    seed: u64,
    per_vendor_cap: Option<u32>,
    mutate: impl Fn(&mut NatBehavior, &mut StdRng),
) -> SurveyResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut result = SurveyResult::default();
    result.total.vendor = "All".into();
    for spec in VENDORS {
        let mut row = SurveyRow {
            vendor: spec.name.to_string(),
            ..SurveyRow::default()
        };
        let population = VendorProfile::new(*spec).sample_population(&mut rng);
        for (i, device) in population.iter().enumerate() {
            if let Some(cap) = per_vendor_cap {
                if i as u32 >= cap {
                    break;
                }
            }
            let device_seed = seed ^ ((i as u64) << 20) ^ fxhash(spec.name);
            let mut behavior = device.behavior.clone();
            mutate(&mut behavior, &mut rng);
            let report = check_nat(behavior, device_seed);
            tally(
                &mut row,
                device.in_hairpin_sample,
                device.in_tcp_sample,
                &report,
            );
            tally(
                &mut result.total,
                device.in_hairpin_sample,
                device.in_tcp_sample,
                &report,
            );
        }
        result.rows.push(row);
    }
    result
}

/// Adds one device's measurements to a row, honouring the reporting
/// subsets (hairpin and TCP columns were only collected by later NAT
/// Check versions).
fn tally(row: &mut SurveyRow, in_hairpin: bool, in_tcp: bool, report: &NatCheckReport) {
    if let Some(ok) = report.udp_hole_punching() {
        row.udp.1 += 1;
        row.udp.0 += u32::from(ok);
    }
    if in_hairpin {
        if let Some(hp) = report.udp_hairpin {
            row.udp_hairpin.1 += 1;
            row.udp_hairpin.0 += u32::from(hp);
        }
    }
    if in_tcp {
        if let Some(ok) = report.tcp_hole_punching() {
            row.tcp.1 += 1;
            row.tcp.0 += u32::from(ok);
        }
        if let Some(hp) = report.tcp_hairpin {
            row.tcp_hairpin.1 += 1;
            row.tcp_hairpin.0 += u32::from(hp);
        }
    }
}

fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}
