//! The §6.2 survey: NAT Check over sampled vendor populations,
//! regenerating Table 1.

use crate::client::{NatCheckClient, NatCheckReport};
use crate::servers::{CheckServer, ServerRole};
use punch_lab::{par, WorldBuilder};
use punch_nat::{NatBehavior, SampledNat, VendorProfile, VENDORS};
use punch_net::seed::{derive_seed, mix};
use punch_net::{SimStats, SimTime};
use punch_transport::HostDevice;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::Ipv4Addr;

/// NAT Check server addresses used by the harness.
pub const S1: Ipv4Addr = Ipv4Addr::new(18, 181, 0, 31);
/// Second server.
pub const S2: Ipv4Addr = Ipv4Addr::new(64, 15, 12, 2);
/// Third server.
pub const S3: Ipv4Addr = Ipv4Addr::new(128, 8, 126, 9);

/// Runs the full NAT Check procedure against one NAT configuration and
/// returns the measured report.
pub fn check_nat(behavior: NatBehavior, seed: u64) -> NatCheckReport {
    check_nat_instrumented(behavior, seed).0
}

/// [`check_nat`], also returning the engine counters of the underlying
/// simulation — the survey aggregates these into its throughput figures.
pub fn check_nat_instrumented(behavior: NatBehavior, seed: u64) -> (NatCheckReport, SimStats) {
    let mut wb = WorldBuilder::new(seed);
    wb.server(S1, CheckServer::new(ServerRole::One));
    wb.server(S2, CheckServer::new(ServerRole::Two { s3: S3 }));
    wb.server(S3, CheckServer::new(ServerRole::Three));
    let nat = wb.nat(behavior, "155.99.25.11".parse().expect("addr")); // punch-lint: allow(P001) hard-coded literal address; parse cannot fail
    wb.client(
        "10.0.0.1".parse().expect("addr"), // punch-lint: allow(P001) hard-coded literal address; parse cannot fail
        nat,
        punch_lab::PeerSetup::new(NatCheckClient::new(S1, S2, S3)),
    );
    let mut world = wb.build();
    let client = world.clients[0];
    world.run_until_app::<NatCheckClient>(client, SimTime::from_secs(120), |c| c.done());
    let report = world
        .sim
        .device::<HostDevice>(client)
        .app::<NatCheckClient>()
        .report();
    (report, world.sim.stats())
}

/// One reproduced Table 1 row: `(compatible, tested)` per column.
#[derive(Clone, Debug, Default)]
pub struct SurveyRow {
    /// Vendor name.
    pub vendor: String,
    /// UDP hole punching.
    pub udp: (u32, u32),
    /// UDP hairpin.
    pub udp_hairpin: (u32, u32),
    /// TCP hole punching.
    pub tcp: (u32, u32),
    /// TCP hairpin.
    pub tcp_hairpin: (u32, u32),
}

impl SurveyRow {
    fn pct(k: u32, n: u32) -> f64 {
        if n == 0 {
            0.0
        } else {
            100.0 * k as f64 / n as f64
        }
    }

    /// Formats the row like the paper's table.
    pub fn format(&self) -> String {
        format!(
            "{:<10} {:>3}/{:<3} ({:>3.0}%)  {:>3}/{:<3} ({:>3.0}%)  {:>3}/{:<3} ({:>3.0}%)  {:>3}/{:<3} ({:>3.0}%)",
            self.vendor,
            self.udp.0,
            self.udp.1,
            Self::pct(self.udp.0, self.udp.1),
            self.udp_hairpin.0,
            self.udp_hairpin.1,
            Self::pct(self.udp_hairpin.0, self.udp_hairpin.1),
            self.tcp.0,
            self.tcp.1,
            Self::pct(self.tcp.0, self.tcp.1),
            self.tcp_hairpin.0,
            self.tcp_hairpin.1,
            Self::pct(self.tcp_hairpin.0, self.tcp_hairpin.1),
        )
    }
}

/// The reproduced Table 1.
#[derive(Clone, Debug, Default)]
pub struct SurveyResult {
    /// Per-vendor rows (in the paper's order), then `(other)`.
    pub rows: Vec<SurveyRow>,
    /// The "All Vendors" totals row.
    pub total: SurveyRow,
    /// Devices measured end-to-end.
    pub devices: u64,
    /// Engine events dispatched, summed over every device simulation
    /// (deterministic per seed).
    pub sim_events: u64,
    /// Wall-clock nanoseconds the engines spent in their run loops,
    /// summed over devices. Under parallel execution this exceeds the
    /// survey's elapsed time (it is CPU time, not latency); not
    /// deterministic.
    pub sim_busy_nanos: u64,
}

impl SurveyResult {
    /// Renders the whole table.
    pub fn format(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "                 UDP punch      UDP hairpin     TCP punch       TCP hairpin\n",
        );
        for row in &self.rows {
            out.push_str(&row.format());
            out.push('\n');
        }
        out.push_str(&self.total.format());
        out.push('\n');
        out
    }
}

/// Runs NAT Check across every vendor population from Table 1's quotas
/// and measures each sampled device end-to-end.
///
/// `per_device_budget` bounds devices per vendor (use `None` for the
/// paper's full sample sizes; smaller values give a fast smoke survey).
pub fn run_survey(seed: u64, per_vendor_cap: Option<u32>) -> SurveyResult {
    run_survey_mutated(seed, per_vendor_cap, |_, _| {})
}

/// [`run_survey`] with a hook that may mutate each sampled device's
/// behaviour before measurement — the substrate for ablation studies
/// (force payload mangling, hairpin filtering, contention breakage, ...).
///
/// Devices are measured on the [`par`] worker pool. Each device's task
/// is self-contained: its simulation seed and its mutation RNG both
/// derive from `(seed, vendor, index)` via [`derive_seed`], never from
/// a stream shared across devices — so the result is identical for any
/// worker count (see [`run_survey_mutated_with_workers`] and the
/// determinism regression tests).
pub fn run_survey_mutated(
    seed: u64,
    per_vendor_cap: Option<u32>,
    mutate: impl Fn(&mut NatBehavior, &mut StdRng) + Sync,
) -> SurveyResult {
    run_survey_mutated_with_workers(seed, per_vendor_cap, None, mutate)
}

/// Salt folded into a device's seed to decouple its mutation RNG stream
/// from its simulation RNG stream (b"mutate" as an integer).
const MUTATE_SALT: u64 = 0x6d75_7461_7465;

/// [`run_survey_mutated`] with an explicit worker count (`None` = the
/// [`par::jobs`] default). Output is byte-identical across worker
/// counts; the explicit form exists so tests can prove that.
pub fn run_survey_mutated_with_workers(
    seed: u64,
    per_vendor_cap: Option<u32>,
    workers: Option<usize>,
    mutate: impl Fn(&mut NatBehavior, &mut StdRng) + Sync,
) -> SurveyResult {
    // Phase 1 — sequential: sample every vendor population from one RNG
    // stream in vendor order (quota assignment is inherently a
    // whole-population draw, and it is cheap next to measurement).
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tasks: Vec<(usize, u64, SampledNat)> = Vec::new();
    for (v, spec) in VENDORS.iter().enumerate() {
        let population =
            VendorProfile::new(*spec).sample_population_capped(&mut rng, per_vendor_cap);
        for (i, device) in population.into_iter().enumerate() {
            tasks.push((v, i as u64, device));
        }
    }

    // Phase 2 — parallel: run NAT Check end-to-end on every device.
    // Each task derives its own seeds from its identity alone.
    let measure = |_: usize, (v, i, device): &(usize, u64, SampledNat)| {
        let vendor = VENDORS[*v].name;
        let device_seed = derive_seed(seed, vendor, *i);
        let mut behavior = device.behavior.clone();
        let mut mutation_rng = StdRng::seed_from_u64(mix(device_seed ^ MUTATE_SALT));
        mutate(&mut behavior, &mut mutation_rng);
        check_nat_instrumented(behavior, device_seed)
    };
    let reports = match workers {
        Some(w) => par::run_with_workers(&tasks, w, measure),
        None => par::run(&tasks, measure),
    };

    // Phase 3 — sequential: tally in task order, so the table is
    // independent of which worker measured which device.
    let mut result = SurveyResult::default();
    result.total.vendor = "All".into();
    result.rows = VENDORS
        .iter()
        .map(|spec| SurveyRow {
            vendor: spec.name.to_string(),
            ..SurveyRow::default()
        })
        .collect();
    for ((v, _, device), (report, stats)) in tasks.iter().zip(&reports) {
        tally(
            &mut result.rows[*v],
            device.in_hairpin_sample,
            device.in_tcp_sample,
            report,
        );
        tally(
            &mut result.total,
            device.in_hairpin_sample,
            device.in_tcp_sample,
            report,
        );
        result.devices += 1;
        result.sim_events += stats.events;
        result.sim_busy_nanos += stats.busy_nanos;
    }
    result
}

/// Adds one device's measurements to a row, honouring the reporting
/// subsets (hairpin and TCP columns were only collected by later NAT
/// Check versions).
fn tally(row: &mut SurveyRow, in_hairpin: bool, in_tcp: bool, report: &NatCheckReport) {
    if let Some(ok) = report.udp_hole_punching() {
        row.udp.1 += 1;
        row.udp.0 += u32::from(ok);
    }
    if in_hairpin {
        if let Some(hp) = report.udp_hairpin {
            row.udp_hairpin.1 += 1;
            row.udp_hairpin.0 += u32::from(hp);
        }
    }
    if in_tcp {
        if let Some(ok) = report.tcp_hole_punching() {
            row.tcp.1 += 1;
            row.tcp.0 += u32::from(ok);
        }
        if let Some(hp) = report.tcp_hairpin {
            row.tcp_hairpin.1 += 1;
            row.tcp_hairpin.0 += u32::from(hp);
        }
    }
}
