//! The NAT Check client (§6.1): a phased prober producing a
//! [`NatCheckReport`].

use crate::servers::{CHECK_PORT, S3_PROBE_PORT};
use crate::wire::{CheckFrames, CheckMsg};
use punch_net::{Endpoint, SimTime};
use punch_transport::{App, ConnectOpts, Os, SockEvent, SocketId};
use rand::Rng;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::time::Duration;

/// What NAT Check measured (every field `None` until that sub-test ran).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NatCheckReport {
    /// Public UDP endpoints observed by servers 1 and 2.
    pub udp_public: Option<(Endpoint, Endpoint)>,
    /// Servers 1 and 2 observed the same endpoint (§5.1 precondition).
    pub udp_consistent: Option<bool>,
    /// The NAT's UDP allocation stride: server 2's observed port minus
    /// server 1's. `Some(0)` for a consistent (cone) translation; a
    /// nonzero value is the §5.1 delta a sequential-allocation symmetric
    /// NAT exposes, directly usable to seed a prediction strategy's
    /// port window. `None` until both observations arrive.
    pub udp_alloc_delta: Option<i32>,
    /// Server 3's never-solicited reply was *blocked* (per-session
    /// filtering; does not affect punching, §6.1.1).
    pub udp_unsolicited_filtered: Option<bool>,
    /// The hairpin probe from a second local socket reached the first.
    pub udp_hairpin: Option<bool>,
    /// Public TCP endpoints observed by servers 1 and 2 match.
    pub tcp_consistent: Option<bool>,
    /// Server 3's unsolicited SYN produced an inbound connection at the
    /// client before server 2's delayed reply (NAT admits inbound SYNs).
    pub tcp_inbound_syn_passed: Option<bool>,
    /// The client's subsequent connect to server 3 succeeded
    /// (simultaneous open through the hole; fails if the NAT RSTs).
    pub tcp_s3_connect_ok: Option<bool>,
    /// TCP hairpin: a secondary-port connect to our own public TCP
    /// endpoint completed.
    pub tcp_hairpin: Option<bool>,
}

impl NatCheckReport {
    /// NAT Check's UDP hole-punching compatibility verdict.
    pub fn udp_hole_punching(&self) -> Option<bool> {
        self.udp_consistent
    }

    /// NAT Check's TCP hole-punching compatibility verdict: consistent
    /// translation *and* no active rejection of unsolicited SYNs.
    pub fn tcp_hole_punching(&self) -> Option<bool> {
        match (self.tcp_consistent, self.tcp_s3_connect_ok) {
            (Some(c), Some(ok)) => Some(c && ok),
            _ => None,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    UdpProbing { started: SimTime },
    UdpSettling { since: SimTime },
    TcpProbing { started: SimTime },
    TcpHairpin { since: SimTime },
    Done,
}

/// Timer token for the driving tick.
const TICK: u64 = 1;
const TICK_EVERY: Duration = Duration::from_millis(500);
/// How long each settling window lasts.
const SETTLE: Duration = Duration::from_secs(5);
/// Give-up bound for the probing phases.
const PHASE_DEADLINE: Duration = Duration::from_secs(12);
/// Give-up bound for the TCP phase (covers the 5 s go-ahead delay).
const TCP_DEADLINE: Duration = Duration::from_secs(25);

/// The NAT Check client application.
///
/// Runs the UDP test, then the TCP test, then finishes; poll
/// [`NatCheckClient::report`] for results and [`NatCheckClient::done`]
/// for completion.
pub struct NatCheckClient {
    s1: Ipv4Addr,
    s2: Ipv4Addr,
    s3: Ipv4Addr,
    /// Fixed local UDP port for the primary socket (0 = ephemeral). The
    /// §6.3 paired contention check runs two clients on the *same* port.
    udp_port: u16,
    phase: Phase,
    token: u64,
    // UDP state.
    sock1: Option<SocketId>,
    sock2: Option<SocketId>,
    udp_obs1: Option<Endpoint>,
    udp_obs2: Option<Endpoint>,
    udp_from3: bool,
    udp_hairpin_echoed: bool,
    hairpin_probe_sent: bool,
    // TCP state.
    listener: Option<SocketId>,
    local_tcp_port: u16,
    conn1: Option<SocketId>,
    conn2: Option<SocketId>,
    frames: BTreeMap<SocketId, CheckFrames>,
    tcp_obs1: Option<Endpoint>,
    tcp_obs2: Option<Endpoint>,
    inbound_from_s3: bool,
    s3_conn: Option<SocketId>,
    s3_ok: Option<bool>,
    hairpin_conn: Option<SocketId>,
    tcp_hairpin_ok: bool,
    report: NatCheckReport,
    done: bool,
}

impl NatCheckClient {
    /// Creates a client probing the three given server addresses.
    pub fn new(s1: Ipv4Addr, s2: Ipv4Addr, s3: Ipv4Addr) -> Self {
        NatCheckClient {
            s1,
            s2,
            s3,
            udp_port: 0,
            phase: Phase::UdpProbing {
                started: SimTime::ZERO,
            },
            token: 0,
            sock1: None,
            sock2: None,
            udp_obs1: None,
            udp_obs2: None,
            udp_from3: false,
            udp_hairpin_echoed: false,
            hairpin_probe_sent: false,
            listener: None,
            local_tcp_port: 0,
            conn1: None,
            conn2: None,
            frames: BTreeMap::new(),
            tcp_obs1: None,
            tcp_obs2: None,
            inbound_from_s3: false,
            s3_conn: None,
            s3_ok: None,
            hairpin_conn: None,
            tcp_hairpin_ok: false,
            report: NatCheckReport::default(),
            done: false,
        }
    }

    /// Fixes the primary UDP socket's local port (for the §6.3 paired
    /// contention check).
    pub fn with_udp_port(mut self, port: u16) -> Self {
        self.udp_port = port;
        self
    }

    /// The report so far (final once [`NatCheckClient::done`]).
    pub fn report(&self) -> NatCheckReport {
        self.report
    }

    /// True once all tests finished.
    pub fn done(&self) -> bool {
        self.done
    }

    fn send_udp_probes(&mut self, os: &mut Os<'_, '_>) {
        let sock = self.sock1.expect("bound"); // punch-lint: allow(P001) sock1 is bound in on_start before any probe timer fires
        if self.udp_obs1.is_none() {
            let _ = os.udp_send(
                sock,
                Endpoint::new(self.s1, CHECK_PORT),
                CheckMsg::UdpProbe { token: self.token }.encode(),
            );
        }
        if self.udp_obs2.is_none() {
            let _ = os.udp_send(
                sock,
                Endpoint::new(self.s2, CHECK_PORT),
                CheckMsg::UdpProbe { token: self.token }.encode(),
            );
        }
    }

    fn maybe_send_hairpin_probe(&mut self, os: &mut Os<'_, '_>) {
        if self.hairpin_probe_sent {
            return;
        }
        let (Some(target), Some(sock2)) = (self.udp_obs2, self.sock2) else {
            return;
        };
        self.hairpin_probe_sent = true;
        let _ = os.udp_send(
            sock2,
            target,
            CheckMsg::HairpinProbe { token: self.token }.encode(),
        );
    }

    fn finalize_udp(&mut self) {
        if let (Some(o1), Some(o2)) = (self.udp_obs1, self.udp_obs2) {
            self.report.udp_public = Some((o1, o2));
            self.report.udp_consistent = Some(o1 == o2);
            self.report.udp_alloc_delta = Some(o2.port as i32 - o1.port as i32);
            self.report.udp_unsolicited_filtered = Some(!self.udp_from3);
            self.report.udp_hairpin = Some(self.udp_hairpin_echoed);
        }
    }

    fn start_tcp(&mut self, os: &mut Os<'_, '_>) {
        let listener = os.tcp_listen(0, true).expect("ephemeral tcp port"); // punch-lint: allow(P001) fresh sim host always has a free ephemeral port
        self.local_tcp_port = os.local_endpoint(listener).expect("bound").port; // punch-lint: allow(P001) listener bound on the previous line
        self.listener = Some(listener);
        let opts = ConnectOpts {
            local_port: Some(self.local_tcp_port),
            reuse: true,
        };
        self.conn1 = os
            .tcp_connect(Endpoint::new(self.s1, CHECK_PORT), opts)
            .ok();
        self.conn2 = os
            .tcp_connect(Endpoint::new(self.s2, CHECK_PORT), opts)
            .ok();
        if let Some(c) = self.conn1 {
            self.frames.insert(c, CheckFrames::default());
        }
        if let Some(c) = self.conn2 {
            self.frames.insert(c, CheckFrames::default());
        }
    }

    fn start_s3_connect(&mut self, os: &mut Os<'_, '_>) {
        if self.s3_conn.is_some() || self.s3_ok.is_some() {
            return;
        }
        if self.inbound_from_s3 {
            // The NAT admitted server 3's SYN outright: the connection
            // already exists (it owns our 4-tuple to server 3), which is
            // "fine for hole punching but not ideal for security"
            // (§6.1.2).
            self.s3_ok = Some(true);
            return;
        }
        // §6.1.2: connect to server 3's probe endpoint — a simultaneous
        // open with its pending attempt if our NAT silently dropped it.
        let opts = ConnectOpts {
            local_port: Some(self.local_tcp_port),
            reuse: true,
        };
        match os.tcp_connect(Endpoint::new(self.s3, S3_PROBE_PORT), opts) {
            Ok(sock) => self.s3_conn = Some(sock),
            Err(_) => self.s3_ok = Some(self.inbound_from_s3),
        }
    }

    fn start_tcp_hairpin(&mut self, os: &mut Os<'_, '_>) {
        if self.hairpin_conn.is_some() {
            return;
        }
        let Some(target) = self.tcp_obs1 else {
            return;
        };
        // Secondary local port (ephemeral) to our own public endpoint.
        if let Ok(sock) = os.tcp_connect(target, ConnectOpts::default()) {
            self.hairpin_conn = Some(sock)
        }
    }

    fn finalize_tcp(&mut self) {
        if let (Some(o1), Some(o2)) = (self.tcp_obs1, self.tcp_obs2) {
            self.report.tcp_consistent = Some(o1 == o2);
        }
        if self.report.tcp_consistent.is_some() {
            self.report.tcp_inbound_syn_passed = Some(self.inbound_from_s3);
            self.report.tcp_s3_connect_ok = Some(self.s3_ok.unwrap_or(false));
            self.report.tcp_hairpin = Some(self.tcp_hairpin_ok);
        }
        self.phase = Phase::Done;
        self.done = true;
    }
}

impl App for NatCheckClient {
    fn on_start(&mut self, os: &mut Os<'_, '_>) {
        self.token = os.rng().gen();
        self.sock1 = Some(os.udp_bind(self.udp_port).expect("udp port")); // punch-lint: allow(P001) harness-chosen port on a fresh host; collision is a setup bug
        self.sock2 = Some(os.udp_bind(0).expect("udp port")); // punch-lint: allow(P001) fresh sim host always has a free ephemeral port
        self.phase = Phase::UdpProbing { started: os.now() };
        self.send_udp_probes(os);
        os.set_timer(TICK_EVERY, TICK);
    }

    fn on_event(&mut self, os: &mut Os<'_, '_>, ev: SockEvent) {
        match ev {
            SockEvent::UdpReceived { sock, data, .. } => {
                if Some(sock) != self.sock1 {
                    return;
                }
                match CheckMsg::decode(&data) {
                    Some(CheckMsg::UdpEcho {
                        token,
                        observed,
                        server,
                    }) if token == self.token => {
                        match server {
                            1 => self.udp_obs1 = Some(observed),
                            2 => self.udp_obs2 = Some(observed),
                            3 => self.udp_from3 = true,
                            _ => {}
                        }
                        self.maybe_send_hairpin_probe(os);
                    }
                    Some(CheckMsg::HairpinProbe { token }) if token == self.token => {
                        self.udp_hairpin_echoed = true;
                    }
                    _ => {}
                }
            }
            SockEvent::TcpConnected { sock } => {
                if Some(sock) == self.conn1 || Some(sock) == self.conn2 {
                    let _ = os.tcp_send(
                        sock,
                        &CheckMsg::TcpProbe { token: self.token }.encode_frame(),
                    );
                } else if Some(sock) == self.s3_conn {
                    self.s3_ok = Some(true);
                } else if Some(sock) == self.hairpin_conn {
                    self.tcp_hairpin_ok = true;
                }
            }
            SockEvent::TcpConnectFailed { sock, .. } if Some(sock) == self.s3_conn => {
                self.s3_ok = Some(false);
            }
            // conn1/conn2/hairpin failures leave their fields None/false.
            SockEvent::TcpIncoming { listener } => {
                while let Ok(Some((sock, remote))) = os.tcp_accept(listener) {
                    if remote.ip == self.s3 {
                        self.inbound_from_s3 = true;
                    }
                    // Hairpinned loop-backs arrive from our own public
                    // address; either way we do not speak on them.
                    let _ = os.close(sock);
                }
            }
            SockEvent::TcpReceived { sock, data } => {
                if let Some(frames) = self.frames.get_mut(&sock) {
                    frames.push(&data);
                    while let Some(msg) = self.frames.get_mut(&sock).and_then(|f| f.next_message())
                    {
                        if let CheckMsg::TcpEcho {
                            token,
                            observed,
                            server,
                        } = msg
                        {
                            if token != self.token {
                                continue;
                            }
                            match server {
                                1 => self.tcp_obs1 = Some(observed),
                                2 => {
                                    self.tcp_obs2 = Some(observed);
                                    // Server 2's reply means server 3 has
                                    // been trying for ~5 s: connect now.
                                    self.start_s3_connect(os);
                                }
                                _ => {}
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, os: &mut Os<'_, '_>, token: u64) {
        if token != TICK || self.done {
            return;
        }
        let now = os.now();
        match self.phase {
            Phase::UdpProbing { started } => {
                if self.udp_obs1.is_some() && self.udp_obs2.is_some() {
                    self.maybe_send_hairpin_probe(os);
                    self.phase = Phase::UdpSettling { since: now };
                } else if now.saturating_since(started) > PHASE_DEADLINE {
                    self.phase = Phase::UdpSettling { since: now };
                } else {
                    self.send_udp_probes(os);
                }
            }
            Phase::UdpSettling { since } => {
                if now.saturating_since(since) > SETTLE {
                    self.finalize_udp();
                    self.start_tcp(os);
                    self.phase = Phase::TcpProbing { started: now };
                }
            }
            Phase::TcpProbing { started } => {
                let ready =
                    self.tcp_obs1.is_some() && self.tcp_obs2.is_some() && self.s3_ok.is_some();
                if ready || now.saturating_since(started) > TCP_DEADLINE {
                    self.start_tcp_hairpin(os);
                    self.phase = Phase::TcpHairpin { since: now };
                }
            }
            Phase::TcpHairpin { since } => {
                if now.saturating_since(since) > SETTLE {
                    self.finalize_tcp();
                }
            }
            Phase::Done => {}
        }
        if !self.done {
            os.set_timer(TICK_EVERY, TICK);
        }
    }
}
