//! # punch-natcheck — the NAT Check tool, reproduced
//!
//! A faithful reimplementation of the paper's §6.1 measurement tool:
//!
//! - [`CheckServer`] ×3 — two reflectors plus the unsolicited-traffic
//!   originator, with server 2's deferred reply and server 3's
//!   listener-less TCP probe port (Figure 8).
//! - [`NatCheckClient`] — the phased client: UDP consistency, per-session
//!   filtering, UDP hairpin; TCP consistency, unsolicited-SYN handling
//!   via deliberate simultaneous open with server 3, TCP hairpin.
//! - [`survey`] — runs NAT Check over the Table 1 vendor populations of
//!   `punch-nat` and regenerates the table **by measurement**, not by
//!   reading configurations back.
//!
//! Deliberately reproduced limitation (§6.3): payload endpoints are not
//! obfuscated, so payload-mangling NATs corrupt NAT Check's view.

pub mod client;
pub mod pair;
pub mod servers;
pub mod survey;
pub mod wire;

pub use client::{NatCheckClient, NatCheckReport};
pub use pair::{check_nat_pair, PairReport};
pub use servers::{CheckServer, ServerRole, CHECK_PORT, S3_PROBE_PORT};
pub use survey::{
    check_nat, check_nat_instrumented, run_survey, run_survey_mutated,
    run_survey_mutated_with_workers, SurveyResult, SurveyRow,
};
pub use wire::{CheckFrames, CheckMsg, InboundStatus, MAX_CHECK_BUFFER};
