//! NAT Check's own little protocol (§6.1).
//!
//! Faithful to the original in one important way: endpoints in payloads
//! are transmitted **in the clear** — the paper's §6.3 admits NAT Check
//! "currently does not protect itself" against payload-mangling NATs, and
//! reproducing that limitation lets E11/E15 demonstrate its effect.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use punch_net::Endpoint;
use std::net::Ipv4Addr;

/// Which server an echo came from.
pub type ServerNo = u8;

/// Result status of server 3's inbound connection attempt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InboundStatus {
    /// Still in SYN-SENT after the 5-second grace (NAT silently drops).
    InProgress,
    /// The attempt completed (NAT let it through).
    Connected,
    /// The attempt was refused (NAT sent RST or ICMP).
    Refused,
}

/// NAT Check protocol messages (UDP datagrams, or 16-bit-length-prefixed
/// frames over TCP).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckMsg {
    /// Client → server 1/2: observe me.
    UdpProbe {
        /// Correlation token.
        token: u64,
    },
    /// Server → client: your observed endpoint.
    UdpEcho {
        /// Correlation token.
        token: u64,
        /// Source endpoint observed by the server.
        observed: Endpoint,
        /// Which server answered (1, 2, or 3).
        server: ServerNo,
    },
    /// Server 2 → server 3 (UDP control): reply to this client from your
    /// own address (the unsolicited-traffic test).
    ForwardUdp {
        /// The client's public UDP endpoint.
        client: Endpoint,
        /// Correlation token.
        token: u64,
    },
    /// Client → server 1/2 over TCP: observe me.
    TcpProbe {
        /// Correlation token.
        token: u64,
    },
    /// Server → client over TCP: your observed endpoint.
    TcpEcho {
        /// Correlation token.
        token: u64,
        /// Source endpoint observed by the server.
        observed: Endpoint,
        /// Which server answered.
        server: ServerNo,
    },
    /// Server 2 → server 3 (UDP control): attempt an inbound TCP
    /// connection to this client, answer with a go-ahead.
    TcpInboundReq {
        /// The client's public TCP endpoint.
        client: Endpoint,
        /// Correlation token.
        token: u64,
    },
    /// Server 3 → server 2 (UDP control): go-ahead, with the attempt's
    /// status so far.
    TcpGoAhead {
        /// Correlation token.
        token: u64,
        /// Status of the inbound attempt.
        status: InboundStatus,
    },
    /// Client (second socket) → its own public endpoint: hairpin probe.
    HairpinProbe {
        /// Correlation token.
        token: u64,
    },
}

const T_UDP_PROBE: u8 = 1;
const T_UDP_ECHO: u8 = 2;
const T_FORWARD_UDP: u8 = 3;
const T_TCP_PROBE: u8 = 4;
const T_TCP_ECHO: u8 = 5;
const T_TCP_INBOUND_REQ: u8 = 6;
const T_TCP_GO_AHEAD: u8 = 7;
const T_HAIRPIN_PROBE: u8 = 8;

fn put_ep(buf: &mut BytesMut, ep: Endpoint) {
    buf.put_slice(&ep.ip.octets());
    buf.put_u16(ep.port);
}

fn get_ep(buf: &mut &[u8]) -> Option<Endpoint> {
    if buf.len() < 6 {
        return None;
    }
    let mut o = [0u8; 4];
    buf.copy_to_slice(&mut o);
    let port = buf.get_u16();
    Some(Endpoint::new(Ipv4Addr::from(o), port))
}

fn get_u64(buf: &mut &[u8]) -> Option<u64> {
    (buf.len() >= 8).then(|| buf.get_u64())
}

fn get_u8(buf: &mut &[u8]) -> Option<u8> {
    (!buf.is_empty()).then(|| buf.get_u8())
}

impl CheckMsg {
    /// Encodes the message.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(24);
        match self {
            CheckMsg::UdpProbe { token } => {
                buf.put_u8(T_UDP_PROBE);
                buf.put_u64(*token);
            }
            CheckMsg::UdpEcho {
                token,
                observed,
                server,
            } => {
                buf.put_u8(T_UDP_ECHO);
                buf.put_u64(*token);
                put_ep(&mut buf, *observed);
                buf.put_u8(*server);
            }
            CheckMsg::ForwardUdp { client, token } => {
                buf.put_u8(T_FORWARD_UDP);
                put_ep(&mut buf, *client);
                buf.put_u64(*token);
            }
            CheckMsg::TcpProbe { token } => {
                buf.put_u8(T_TCP_PROBE);
                buf.put_u64(*token);
            }
            CheckMsg::TcpEcho {
                token,
                observed,
                server,
            } => {
                buf.put_u8(T_TCP_ECHO);
                buf.put_u64(*token);
                put_ep(&mut buf, *observed);
                buf.put_u8(*server);
            }
            CheckMsg::TcpInboundReq { client, token } => {
                buf.put_u8(T_TCP_INBOUND_REQ);
                put_ep(&mut buf, *client);
                buf.put_u64(*token);
            }
            CheckMsg::TcpGoAhead { token, status } => {
                buf.put_u8(T_TCP_GO_AHEAD);
                buf.put_u64(*token);
                buf.put_u8(match status {
                    InboundStatus::InProgress => 0,
                    InboundStatus::Connected => 1,
                    InboundStatus::Refused => 2,
                });
            }
            CheckMsg::HairpinProbe { token } => {
                buf.put_u8(T_HAIRPIN_PROBE);
                buf.put_u64(*token);
            }
        }
        buf.freeze()
    }

    /// Decodes one message; `None` for anything malformed, including a
    /// valid message followed by trailing bytes (strict framing — a
    /// padded datagram is treated as hostile, not trimmed).
    pub fn decode(data: &[u8]) -> Option<CheckMsg> {
        let mut buf = data;
        let tag = get_u8(&mut buf)?;
        let msg = match tag {
            T_UDP_PROBE => CheckMsg::UdpProbe {
                token: get_u64(&mut buf)?,
            },
            T_UDP_ECHO => CheckMsg::UdpEcho {
                token: get_u64(&mut buf)?,
                observed: get_ep(&mut buf)?,
                server: get_u8(&mut buf)?,
            },
            T_FORWARD_UDP => CheckMsg::ForwardUdp {
                client: get_ep(&mut buf)?,
                token: get_u64(&mut buf)?,
            },
            T_TCP_PROBE => CheckMsg::TcpProbe {
                token: get_u64(&mut buf)?,
            },
            T_TCP_ECHO => CheckMsg::TcpEcho {
                token: get_u64(&mut buf)?,
                observed: get_ep(&mut buf)?,
                server: get_u8(&mut buf)?,
            },
            T_TCP_INBOUND_REQ => CheckMsg::TcpInboundReq {
                client: get_ep(&mut buf)?,
                token: get_u64(&mut buf)?,
            },
            T_TCP_GO_AHEAD => CheckMsg::TcpGoAhead {
                token: get_u64(&mut buf)?,
                status: match get_u8(&mut buf)? {
                    0 => InboundStatus::InProgress,
                    1 => InboundStatus::Connected,
                    2 => InboundStatus::Refused,
                    _ => return None,
                },
            },
            T_HAIRPIN_PROBE => CheckMsg::HairpinProbe {
                token: get_u64(&mut buf)?,
            },
            _ => return None,
        };
        if !buf.is_empty() {
            return None;
        }
        Some(msg)
    }

    /// Encodes as a 16-bit-length-prefixed TCP frame.
    pub fn encode_frame(&self) -> Bytes {
        let body = self.encode();
        let mut buf = BytesMut::with_capacity(body.len() + 2);
        // punch-lint: allow(P001) encoder-controlled bodies are <= 24 bytes; checked so oversize can never truncate on the wire
        buf.put_u16(u16::try_from(body.len()).expect("CheckMsg body exceeds u16 frame length"));
        buf.put_slice(&body);
        buf.freeze()
    }
}

/// Maximum bytes a [`CheckFrames`] reassembler will hold. NAT Check
/// messages are tiny (≤ 24 bytes), so a handful of frames' worth of
/// slack is generous; a hostile stream that outruns the cap is
/// discarded rather than buffered without bound.
pub const MAX_CHECK_BUFFER: usize = 1024;

/// Incremental reassembler for framed [`CheckMsg`]s on a TCP stream.
///
/// Buffering is bounded by [`MAX_CHECK_BUFFER`]: overflowing input
/// poisons the reassembler, which then drops everything (NAT Check
/// probes are fire-and-forget, so the peer simply looks unresponsive —
/// the same outcome §6.3 reports for misbehaving middleboxes).
#[derive(Debug, Default)]
pub struct CheckFrames {
    buf: BytesMut,
    /// Set when the cap was breached; all further input is discarded.
    overflowed: bool,
}

impl CheckFrames {
    /// Appends stream bytes. Exceeding [`MAX_CHECK_BUFFER`] poisons the
    /// reassembler: buffered bytes are dropped and further pushes are
    /// ignored.
    pub fn push(&mut self, chunk: &[u8]) {
        if self.overflowed {
            return;
        }
        if self.buf.len() + chunk.len() > MAX_CHECK_BUFFER {
            self.overflowed = true;
            self.buf = BytesMut::new();
            return;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Returns true once the stream has overflowed its buffer cap (and
    /// the reassembler has permanently shut); callers should close the
    /// connection.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Pops the next complete message (malformed frames decode to `None`
    /// and are skipped; a poisoned reassembler yields nothing).
    pub fn next_message(&mut self) -> Option<CheckMsg> {
        loop {
            if self.buf.len() < 2 {
                return None;
            }
            let len = u16::from_be_bytes([self.buf[0], self.buf[1]]) as usize;
            if self.buf.len() < 2 + len {
                return None;
            }
            self.buf.advance(2);
            let body = self.buf.split_to(len);
            if let Some(msg) = CheckMsg::decode(&body) {
                return Some(msg);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all() -> Vec<CheckMsg> {
        let ep: Endpoint = "155.99.25.11:62000".parse().unwrap();
        vec![
            CheckMsg::UdpProbe { token: 7 },
            CheckMsg::UdpEcho {
                token: 7,
                observed: ep,
                server: 2,
            },
            CheckMsg::ForwardUdp {
                client: ep,
                token: 7,
            },
            CheckMsg::TcpProbe { token: 8 },
            CheckMsg::TcpEcho {
                token: 8,
                observed: ep,
                server: 1,
            },
            CheckMsg::TcpInboundReq {
                client: ep,
                token: 8,
            },
            CheckMsg::TcpGoAhead {
                token: 8,
                status: InboundStatus::InProgress,
            },
            CheckMsg::TcpGoAhead {
                token: 8,
                status: InboundStatus::Refused,
            },
            CheckMsg::HairpinProbe { token: 9 },
        ]
    }

    #[test]
    fn roundtrip() {
        for m in all() {
            assert_eq!(CheckMsg::decode(&m.encode()), Some(m));
        }
    }

    #[test]
    fn truncation_is_none() {
        for m in all() {
            let enc = m.encode();
            for cut in 0..enc.len() {
                // Shorter prefixes either fail or (never) succeed.
                if let Some(d) = CheckMsg::decode(&enc[..cut]) {
                    panic!("prefix decoded to {d:?}");
                }
            }
        }
        assert_eq!(CheckMsg::decode(&[]), None);
        assert_eq!(CheckMsg::decode(&[99]), None);
    }

    #[test]
    fn trailing_bytes_now_rejected() {
        // Regression pin: decode used to accept these padded inputs and
        // silently drop the tail. Strict framing returns None for every
        // one of them.
        for m in all() {
            let mut padded = m.encode().to_vec();
            padded.push(0);
            assert_eq!(CheckMsg::decode(&padded), None, "{m:?} + 1 byte");
            padded.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
            assert_eq!(CheckMsg::decode(&padded), None, "{m:?} + 5 bytes");
        }
        // Exact-length encodings still decode (strictness must not break
        // the happy path).
        for m in all() {
            assert_eq!(CheckMsg::decode(&m.encode()), Some(m));
        }
    }

    #[test]
    fn overflow_poisons_the_reassembler() {
        let mut fr = CheckFrames::default();
        // An incomplete frame that never finishes, streamed past the cap.
        fr.push(&u16::MAX.to_be_bytes());
        let junk = vec![0u8; 128];
        for _ in 0..(MAX_CHECK_BUFFER / junk.len() + 2) {
            fr.push(&junk);
        }
        assert!(fr.overflowed());
        assert_eq!(fr.next_message(), None);
        // Later valid frames are ignored: the stream is dead.
        fr.push(&CheckMsg::UdpProbe { token: 1 }.encode_frame());
        assert_eq!(fr.next_message(), None);
    }

    #[test]
    fn bursts_below_the_cap_reassemble() {
        let mut fr = CheckFrames::default();
        let m = CheckMsg::UdpProbe { token: 42 };
        for _ in 0..20 {
            fr.push(&m.encode_frame());
        }
        assert!(!fr.overflowed());
        for _ in 0..20 {
            assert_eq!(fr.next_message(), Some(m.clone()));
        }
        assert_eq!(fr.next_message(), None);
    }

    #[test]
    fn frames_reassemble() {
        let msgs = all();
        let mut stream = BytesMut::new();
        for m in &msgs {
            stream.extend_from_slice(&m.encode_frame());
        }
        let mut fr = CheckFrames::default();
        let mut out = Vec::new();
        for chunk in stream.chunks(5) {
            fr.push(chunk);
            while let Some(m) = fr.next_message() {
                out.push(m);
            }
        }
        assert_eq!(out, msgs);
    }
}
