//! The three NAT Check servers (§6.1, Figure 8).
//!
//! All three serve UDP and TCP on a well-known port. Server 2 forwards
//! requests to server 3; server 3 originates the "unsolicited" traffic —
//! a UDP reply from a never-contacted address, and an inbound TCP
//! connection attempt from its probe port (which deliberately has **no
//! listener**, so a client's later outbound connect to it succeeds only
//! via simultaneous open with a still-pending attempt).

use crate::wire::{CheckFrames, CheckMsg, InboundStatus};
use punch_net::Endpoint;
use punch_transport::{App, ConnectOpts, Os, SockEvent, SocketError, SocketId};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::time::Duration;

/// Well-known NAT Check service port.
pub const CHECK_PORT: u16 = 7000;
/// Server 3's TCP probe source port (never listening).
pub const S3_PROBE_PORT: u16 = 7002;
/// Server 3 waits this long before sending an "in progress" go-ahead.
pub const GO_AHEAD_WAIT: Duration = Duration::from_secs(5);

/// Which of the three servers this instance is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerRole {
    /// Plain reflector.
    One,
    /// Reflector that also triggers server 3.
    Two {
        /// Server 3's address.
        s3: Ipv4Addr,
    },
    /// The unsolicited-traffic originator.
    Three,
}

struct PendingReply {
    sock: SocketId,
    observed: Endpoint,
}

struct InboundAttempt {
    sock: Option<SocketId>,
    requester: Endpoint,
    reported: bool,
}

/// One NAT Check server instance.
pub struct CheckServer {
    role: ServerRole,
    udp: Option<SocketId>,
    listener: Option<SocketId>,
    conns: BTreeMap<SocketId, CheckFrames>,
    /// Server 2: replies deferred until server 3's go-ahead, by token.
    pending: BTreeMap<u64, PendingReply>,
    /// Server 3: inbound attempts by token.
    attempts: BTreeMap<u64, InboundAttempt>,
    next_timer: u64,
    timer_tokens: BTreeMap<u64, u64>,
}

impl CheckServer {
    /// Creates a server of the given role.
    pub fn new(role: ServerRole) -> Self {
        CheckServer {
            role,
            udp: None,
            listener: None,
            conns: BTreeMap::new(),
            pending: BTreeMap::new(),
            attempts: BTreeMap::new(),
            next_timer: 1,
            timer_tokens: BTreeMap::new(),
        }
    }

    fn server_no(&self) -> u8 {
        match self.role {
            ServerRole::One => 1,
            ServerRole::Two { .. } => 2,
            ServerRole::Three => 3,
        }
    }

    fn udp_send(&self, os: &mut Os<'_, '_>, to: Endpoint, msg: &CheckMsg) {
        if let Some(sock) = self.udp {
            let _ = os.udp_send(sock, to, msg.encode());
        }
    }

    fn handle_udp(&mut self, os: &mut Os<'_, '_>, from: Endpoint, msg: CheckMsg) {
        match msg {
            CheckMsg::UdpProbe { token } => {
                let echo = CheckMsg::UdpEcho {
                    token,
                    observed: from,
                    server: self.server_no(),
                };
                self.udp_send(os, from, &echo);
                if let ServerRole::Two { s3 } = self.role {
                    self.udp_send(
                        os,
                        Endpoint::new(s3, CHECK_PORT),
                        &CheckMsg::ForwardUdp {
                            client: from,
                            token,
                        },
                    );
                }
            }
            CheckMsg::ForwardUdp { client, token } if self.role == ServerRole::Three => {
                // The reply the client never solicited from us.
                let echo = CheckMsg::UdpEcho {
                    token,
                    observed: client,
                    server: 3,
                };
                self.udp_send(os, client, &echo);
            }
            CheckMsg::TcpInboundReq { client, token } => {
                if self.role != ServerRole::Three {
                    return;
                }
                // §6.1.2: connect from our fixed probe port to the
                // client's public TCP endpoint and wait up to 5 s before
                // the go-ahead.
                let opts = ConnectOpts {
                    local_port: Some(S3_PROBE_PORT),
                    reuse: true,
                };
                let sock = os.tcp_connect(client, opts).ok();
                self.attempts.insert(
                    token,
                    InboundAttempt {
                        sock,
                        requester: from,
                        reported: false,
                    },
                );
                let t = self.next_timer;
                self.next_timer += 1;
                self.timer_tokens.insert(t, token);
                os.set_timer(GO_AHEAD_WAIT, t);
            }
            CheckMsg::TcpGoAhead { token, status } => {
                if let ServerRole::Two { .. } = self.role {
                    let _ = status;
                    if let Some(p) = self.pending.remove(&token) {
                        let echo = CheckMsg::TcpEcho {
                            token,
                            observed: p.observed,
                            server: 2,
                        };
                        let _ = os.tcp_send(p.sock, &echo.encode_frame());
                    }
                }
            }
            _ => {}
        }
    }

    fn handle_tcp(&mut self, os: &mut Os<'_, '_>, sock: SocketId, msg: CheckMsg) {
        if let CheckMsg::TcpProbe { token } = msg {
            let Ok(observed) = os.remote_endpoint(sock) else {
                return;
            };
            match self.role {
                ServerRole::Two { s3 } => {
                    // Defer the reply until server 3 gives the go-ahead.
                    self.pending.insert(token, PendingReply { sock, observed });
                    self.udp_send(
                        os,
                        Endpoint::new(s3, CHECK_PORT),
                        &CheckMsg::TcpInboundReq {
                            client: observed,
                            token,
                        },
                    );
                }
                _ => {
                    let echo = CheckMsg::TcpEcho {
                        token,
                        observed,
                        server: self.server_no(),
                    };
                    let _ = os.tcp_send(sock, &echo.encode_frame());
                }
            }
        }
    }

    /// Reports the inbound attempt's status to server 2 (at most once).
    fn report(&mut self, os: &mut Os<'_, '_>, token: u64, status: InboundStatus) {
        let Some(attempt) = self.attempts.get_mut(&token) else {
            return;
        };
        if attempt.reported {
            return;
        }
        attempt.reported = true;
        let requester = attempt.requester;
        self.udp_send(os, requester, &CheckMsg::TcpGoAhead { token, status });
    }
}

impl App for CheckServer {
    fn on_start(&mut self, os: &mut Os<'_, '_>) {
        self.udp = Some(os.udp_bind(CHECK_PORT).expect("check port free")); // punch-lint: allow(P001) well-known check port on a fresh server host
        self.listener = Some(os.tcp_listen(CHECK_PORT, false).expect("check port free")); // punch-lint: allow(P001) well-known check port on a fresh server host
    }

    fn on_event(&mut self, os: &mut Os<'_, '_>, ev: SockEvent) {
        match ev {
            SockEvent::UdpReceived { from, data, .. } => {
                if let Some(msg) = CheckMsg::decode(&data) {
                    self.handle_udp(os, from, msg);
                }
            }
            SockEvent::TcpIncoming { listener } => {
                while let Ok(Some((sock, _))) = os.tcp_accept(listener) {
                    self.conns.insert(sock, CheckFrames::default());
                }
            }
            SockEvent::TcpReceived { sock, data } => {
                if let Some(frames) = self.conns.get_mut(&sock) {
                    frames.push(&data);
                    while let Some(msg) = self.conns.get_mut(&sock).and_then(|f| f.next_message()) {
                        self.handle_tcp(os, sock, msg);
                    }
                }
            }
            SockEvent::TcpConnected { sock } => {
                // Server 3: the "unsolicited" connect went through — the
                // NAT does not filter (or actively admits) inbound SYNs.
                let token = self
                    .attempts
                    .iter()
                    .find(|(_, a)| a.sock == Some(sock))
                    .map(|(t, _)| *t);
                if let Some(token) = token {
                    self.report(os, token, InboundStatus::Connected);
                }
            }
            SockEvent::TcpConnectFailed { sock, err } => {
                let token = self
                    .attempts
                    .iter()
                    .find(|(_, a)| a.sock == Some(sock))
                    .map(|(t, _)| *t);
                if let Some(token) = token {
                    let status = match err {
                        SocketError::ConnectionRefused
                        | SocketError::ConnectionReset
                        | SocketError::HostUnreachable => InboundStatus::Refused,
                        _ => InboundStatus::InProgress,
                    };
                    self.report(os, token, status);
                    if let Some(a) = self.attempts.get_mut(&token) {
                        a.sock = None;
                    }
                }
            }
            SockEvent::TcpPeerClosed { sock } => {
                let _ = os.close(sock);
                self.conns.remove(&sock);
            }
            SockEvent::TcpAborted { sock, .. } => {
                self.conns.remove(&sock);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, os: &mut Os<'_, '_>, token: u64) {
        if let Some(attempt_token) = self.timer_tokens.remove(&token) {
            // The 5-second grace elapsed with the attempt still pending.
            self.report(os, attempt_token, InboundStatus::InProgress);
        }
    }
}
