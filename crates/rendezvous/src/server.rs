//! The rendezvous server *S* (§3.1), with TURN-style relaying (§2.2) and
//! connection-reversal signalling (§2.3).
//!
//! One server app speaks the protocol over both transports at the same
//! well-known port: a UDP socket for UDP hole punching, and a TCP listener
//! for TCP hole punching. Registrations are kept per transport, because a
//! client's UDP and TCP public endpoints are distinct NAT mappings.

use crate::peer::PeerId;
use crate::wire::{encode_frame, FrameBuf, Message, ERR_UNKNOWN_PEER};
use punch_net::Endpoint;
use punch_transport::{App, Os, SockEvent, SocketId};
use std::collections::BTreeMap;

/// Rendezvous server configuration.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Well-known port for both UDP and TCP service.
    pub port: u16,
    /// Whether endpoints in message bodies are obfuscated (§3.1). On by
    /// default; turning it off exposes the protocol to payload-mangling
    /// NATs (§5.3) — which is exactly experiment E11.
    pub obfuscate: bool,
    /// Also serve a mapping-probe port at `port + 1`, which answers any
    /// datagram with a [`Message::RegisterAck`] echoing the observed
    /// source. Clients use it to measure symmetric NATs' port-allocation
    /// delta for §5.1 port prediction.
    pub probe_port: bool,
    /// Maximum registrations kept per transport. A registration flood
    /// past the cap evicts the oldest registration (deterministically —
    /// by registration sequence number, not map iteration order)
    /// instead of growing server memory without bound.
    pub max_clients: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            port: 1234,
            obfuscate: true,
            probe_port: true,
            max_clients: 4096,
        }
    }
}

impl ServerConfig {
    /// Same configuration with a different well-known port.
    pub fn with_port(mut self, port: u16) -> Self {
        self.port = port;
        self
    }

    /// Same configuration with endpoint obfuscation on or off.
    pub fn with_obfuscate(mut self, on: bool) -> Self {
        self.obfuscate = on;
        self
    }

    /// Same configuration with the §5.1 mapping-probe port on or off.
    pub fn with_probe_port(mut self, on: bool) -> Self {
        self.probe_port = on;
        self
    }

    /// Same configuration with a different per-transport registration
    /// cap.
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero.
    pub fn with_max_clients(mut self, max: usize) -> Self {
        assert!(max > 0, "max_clients must be positive");
        self.max_clients = max;
        self
    }
}

/// Server-side counters (used by the relay-load experiment E12).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Registrations accepted (UDP + TCP).
    pub registrations: u64,
    /// Introduction pairs performed.
    pub introductions: u64,
    /// Relayed messages.
    pub relayed_msgs: u64,
    /// Relayed payload bytes.
    pub relayed_bytes: u64,
    /// Reversal requests forwarded.
    pub reversals: u64,
    /// Requests that failed (unknown peer, unparsable).
    pub errors: u64,
    /// Scripted restarts endured (registrations dropped each time).
    pub restarts: u64,
    /// Registrations evicted because the table hit
    /// [`ServerConfig::max_clients`].
    pub evictions: u64,
}

#[derive(Clone, Copy, Debug)]
struct UdpReg {
    public: Endpoint,
    private: Endpoint,
    /// Registration order stamp; the table evicts the lowest.
    seq: u64,
}

#[derive(Clone, Copy, Debug)]
struct TcpReg {
    sock: SocketId,
    public: Endpoint,
    private: Endpoint,
    /// Registration order stamp; the table evicts the lowest.
    seq: u64,
}

#[derive(Default)]
struct ConnState {
    frames: FrameBuf,
    peer: Option<PeerId>,
}

/// The rendezvous server application. Run it on a public host:
///
/// ```
/// use punch_net::{LinkSpec, Sim};
/// use punch_rendezvous::{RendezvousServer, ServerConfig};
/// use punch_transport::{HostDevice, StackConfig};
///
/// let mut sim = Sim::new(0);
/// let s = sim.add_node(
///     "S",
///     Box::new(HostDevice::new(
///         [18, 181, 0, 31].into(),
///         StackConfig::default(),
///         Box::new(RendezvousServer::new(ServerConfig::default())),
///     )),
/// );
/// ```
pub struct RendezvousServer {
    cfg: ServerConfig,
    udp_sock: Option<SocketId>,
    probe_sock: Option<SocketId>,
    listener: Option<SocketId>,
    udp_clients: BTreeMap<PeerId, UdpReg>,
    tcp_clients: BTreeMap<PeerId, TcpReg>,
    conns: BTreeMap<SocketId, ConnState>,
    stats: ServerStats,
    /// Monotone registration counter shared by both transports; stamps
    /// make the eviction victim (unique minimum) independent of
    /// `BTreeMap` iteration order.
    reg_seq: u64,
}

impl RendezvousServer {
    /// Creates the server app.
    pub fn new(cfg: ServerConfig) -> Self {
        RendezvousServer {
            cfg,
            udp_sock: None,
            probe_sock: None,
            listener: None,
            udp_clients: BTreeMap::new(),
            tcp_clients: BTreeMap::new(),
            conns: BTreeMap::new(),
            stats: ServerStats::default(),
            reg_seq: 0,
        }
    }

    /// Returns server counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Returns a UDP-registered client's endpoints (tests).
    pub fn udp_registration(&self, peer: PeerId) -> Option<(Endpoint, Endpoint)> {
        self.udp_clients.get(&peer).map(|r| (r.public, r.private))
    }

    /// Returns a TCP-registered client's endpoints (tests).
    pub fn tcp_registration(&self, peer: PeerId) -> Option<(Endpoint, Endpoint)> {
        self.tcp_clients.get(&peer).map(|r| (r.public, r.private))
    }

    /// Makes room for a new UDP registration when the table is full by
    /// evicting the oldest entry. The victim is the unique minimum
    /// `(seq, peer_id)`, so the choice never depends on `BTreeMap`
    /// iteration order.
    fn evict_oldest_udp(&mut self, os: &mut Os<'_, '_>) {
        if self.udp_clients.len() < self.cfg.max_clients {
            return;
        }
        let victim = self
            .udp_clients
            .iter()
            .min_by_key(|(id, r)| (r.seq, id.0))
            .map(|(&id, _)| id);
        if let Some(id) = victim {
            self.udp_clients.remove(&id);
            self.stats.evictions += 1;
            os.metric_inc_labeled("rendezvous.evict", "udp");
        }
    }

    /// TCP counterpart of [`Self::evict_oldest_udp`]; the victim's
    /// connection stays open (it may re-register), only its
    /// registration slot is reclaimed.
    fn evict_oldest_tcp(&mut self, os: &mut Os<'_, '_>) {
        if self.tcp_clients.len() < self.cfg.max_clients {
            return;
        }
        let victim = self
            .tcp_clients
            .iter()
            .min_by_key(|(id, r)| (r.seq, id.0))
            .map(|(&id, _)| id);
        if let Some(id) = victim {
            if let Some(reg) = self.tcp_clients.remove(&id) {
                if let Some(conn) = self.conns.get_mut(&reg.sock) {
                    conn.peer = None;
                }
            }
            self.stats.evictions += 1;
            os.metric_inc_labeled("rendezvous.evict", "tcp");
        }
    }

    fn send_udp(&self, os: &mut Os<'_, '_>, to: Endpoint, msg: &Message) {
        if let Some(sock) = self.udp_sock {
            let _ = os.udp_send(sock, to, msg.encode(self.cfg.obfuscate));
        }
    }

    fn send_tcp(&self, os: &mut Os<'_, '_>, sock: SocketId, msg: &Message) {
        let _ = os.tcp_send(sock, &encode_frame(msg, self.cfg.obfuscate));
    }

    fn handle_udp(&mut self, os: &mut Os<'_, '_>, from: Endpoint, msg: Message) {
        match msg {
            Message::Register { peer_id, private } => {
                if !self.udp_clients.contains_key(&peer_id) {
                    self.evict_oldest_udp(os);
                }
                let seq = self.reg_seq;
                self.reg_seq += 1;
                self.udp_clients.insert(
                    peer_id,
                    UdpReg {
                        public: from,
                        private,
                        seq,
                    },
                );
                self.stats.registrations += 1;
                os.metric_inc_labeled("rendezvous.register", "udp");
                self.send_udp(os, from, &Message::RegisterAck { public: from });
            }
            Message::ConnectRequest {
                peer_id,
                target,
                nonce,
            } => {
                let (Some(req), Some(tgt)) = (
                    self.udp_clients.get(&peer_id).copied(),
                    self.udp_clients.get(&target).copied(),
                ) else {
                    self.stats.errors += 1;
                os.metric_inc("rendezvous.error");
                    self.send_udp(
                        os,
                        from,
                        &Message::ErrorReply {
                            code: ERR_UNKNOWN_PEER,
                        },
                    );
                    return;
                };
                self.stats.introductions += 1;
                os.metric_inc_labeled("rendezvous.introduce", "udp");
                // §3.2 step 2: both sides learn each other's endpoints.
                self.send_udp(
                    os,
                    req.public,
                    &Message::Introduce {
                        peer: target,
                        public: tgt.public,
                        private: tgt.private,
                        nonce,
                        initiator: true,
                    },
                );
                self.send_udp(
                    os,
                    tgt.public,
                    &Message::Introduce {
                        peer: peer_id,
                        public: req.public,
                        private: req.private,
                        nonce,
                        initiator: false,
                    },
                );
            }
            Message::RelayData {
                from: sender,
                target,
                data,
            } => {
                let Some(tgt) = self.udp_clients.get(&target).copied() else {
                    self.stats.errors += 1;
                os.metric_inc("rendezvous.error");
                    self.send_udp(
                        os,
                        from,
                        &Message::ErrorReply {
                            code: ERR_UNKNOWN_PEER,
                        },
                    );
                    return;
                };
                self.stats.relayed_msgs += 1;
                self.stats.relayed_bytes += data.len() as u64;
                os.metric_inc_labeled("rendezvous.relay.msgs", "udp");
                os.metric_inc_by("rendezvous.relay.bytes", data.len() as u64);
                self.send_udp(os, tgt.public, &Message::RelayedData { from: sender, data });
            }
            Message::ReversalRequest {
                peer_id,
                target,
                nonce,
            } => {
                let (Some(req), Some(tgt)) = (
                    self.udp_clients.get(&peer_id).copied(),
                    self.udp_clients.get(&target).copied(),
                ) else {
                    self.stats.errors += 1;
                os.metric_inc("rendezvous.error");
                    self.send_udp(
                        os,
                        from,
                        &Message::ErrorReply {
                            code: ERR_UNKNOWN_PEER,
                        },
                    );
                    return;
                };
                self.stats.reversals += 1;
                os.metric_inc("rendezvous.reversal");
                self.send_udp(
                    os,
                    tgt.public,
                    &Message::ReversalRequested {
                        from: peer_id,
                        public: req.public,
                        private: req.private,
                        nonce,
                    },
                );
            }
            Message::Ping => self.send_udp(os, from, &Message::Pong),
            // Peer-to-peer and server-to-client messages are not for us.
            _ => {
                self.stats.errors += 1;
                os.metric_inc("rendezvous.error");
            }
        }
    }

    fn handle_tcp(&mut self, os: &mut Os<'_, '_>, sock: SocketId, msg: Message) {
        match msg {
            Message::Register { peer_id, private } => {
                let Ok(public) = os.remote_endpoint(sock) else {
                    return;
                };
                if !self.tcp_clients.contains_key(&peer_id) {
                    self.evict_oldest_tcp(os);
                }
                let seq = self.reg_seq;
                self.reg_seq += 1;
                self.tcp_clients.insert(
                    peer_id,
                    TcpReg {
                        sock,
                        public,
                        private,
                        seq,
                    },
                );
                if let Some(conn) = self.conns.get_mut(&sock) {
                    conn.peer = Some(peer_id);
                }
                self.stats.registrations += 1;
                os.metric_inc_labeled("rendezvous.register", "tcp");
                self.send_tcp(os, sock, &Message::RegisterAck { public });
            }
            Message::ConnectRequest {
                peer_id,
                target,
                nonce,
            } => {
                let (Some(req), Some(tgt)) = (
                    self.tcp_clients.get(&peer_id).copied(),
                    self.tcp_clients.get(&target).copied(),
                ) else {
                    self.stats.errors += 1;
                os.metric_inc("rendezvous.error");
                    self.send_tcp(
                        os,
                        sock,
                        &Message::ErrorReply {
                            code: ERR_UNKNOWN_PEER,
                        },
                    );
                    return;
                };
                self.stats.introductions += 1;
                os.metric_inc_labeled("rendezvous.introduce", "tcp");
                self.send_tcp(
                    os,
                    req.sock,
                    &Message::Introduce {
                        peer: target,
                        public: tgt.public,
                        private: tgt.private,
                        nonce,
                        initiator: true,
                    },
                );
                self.send_tcp(
                    os,
                    tgt.sock,
                    &Message::Introduce {
                        peer: peer_id,
                        public: req.public,
                        private: req.private,
                        nonce,
                        initiator: false,
                    },
                );
            }
            Message::RelayData {
                from: sender,
                target,
                data,
            } => {
                let Some(tgt) = self.tcp_clients.get(&target).copied() else {
                    self.stats.errors += 1;
                os.metric_inc("rendezvous.error");
                    self.send_tcp(
                        os,
                        sock,
                        &Message::ErrorReply {
                            code: ERR_UNKNOWN_PEER,
                        },
                    );
                    return;
                };
                self.stats.relayed_msgs += 1;
                self.stats.relayed_bytes += data.len() as u64;
                os.metric_inc_labeled("rendezvous.relay.msgs", "tcp");
                os.metric_inc_by("rendezvous.relay.bytes", data.len() as u64);
                self.send_tcp(os, tgt.sock, &Message::RelayedData { from: sender, data });
            }
            Message::ReversalRequest {
                peer_id,
                target,
                nonce,
            } => {
                let (Some(req), Some(tgt)) = (
                    self.tcp_clients.get(&peer_id).copied(),
                    self.tcp_clients.get(&target).copied(),
                ) else {
                    self.stats.errors += 1;
                os.metric_inc("rendezvous.error");
                    self.send_tcp(
                        os,
                        sock,
                        &Message::ErrorReply {
                            code: ERR_UNKNOWN_PEER,
                        },
                    );
                    return;
                };
                self.stats.reversals += 1;
                os.metric_inc("rendezvous.reversal");
                self.send_tcp(
                    os,
                    tgt.sock,
                    &Message::ReversalRequested {
                        from: peer_id,
                        public: req.public,
                        private: req.private,
                        nonce,
                    },
                );
            }
            Message::Ping => self.send_tcp(os, sock, &Message::Pong),
            _ => {
                self.stats.errors += 1;
                os.metric_inc("rendezvous.error");
            }
        }
    }

    /// Administratively aborts every client TCP connection and forgets
    /// the registrations — what clients observe when the server restarts.
    /// Failure-injection tests drive this; clients must re-register.
    pub fn drop_all_clients(&mut self, os: &mut Os<'_, '_>) {
        let socks: Vec<SocketId> = self.conns.keys().copied().collect();
        for sock in socks {
            let _ = os.tcp_abort(sock);
        }
        self.conns.clear();
        self.tcp_clients.clear();
        self.udp_clients.clear();
    }

    fn drop_conn(&mut self, sock: SocketId) {
        if let Some(conn) = self.conns.remove(&sock) {
            if let Some(peer) = conn.peer {
                // Only drop the registration if it still points at this
                // connection (the client may have re-registered).
                if self.tcp_clients.get(&peer).map(|r| r.sock) == Some(sock) {
                    self.tcp_clients.remove(&peer);
                }
            }
        }
    }
}

impl App for RendezvousServer {
    fn on_start(&mut self, os: &mut Os<'_, '_>) {
        self.udp_sock = Some(os.udp_bind(self.cfg.port).expect("server UDP port free")); // punch-lint: allow(P001) configured server port on a fresh host; collision is a setup bug
        if self.cfg.probe_port {
            self.probe_sock = Some(
                os.udp_bind(self.cfg.port + 1)
                    .expect("server probe port free"), // punch-lint: allow(P001) configured probe port on a fresh host; collision is a setup bug
            );
        }
        self.listener = Some(
            os.tcp_listen(self.cfg.port, false)
                .expect("server TCP port free"), // punch-lint: allow(P001) configured server port on a fresh host; collision is a setup bug
        );
    }

    fn on_fault(&mut self, os: &mut Os<'_, '_>, fault: u64) {
        if fault == punch_net::FAULT_RESTART {
            // A restarted server keeps its ports (same bind on boot) but
            // has an empty registration table; clients discover this only
            // when their next request goes unanswered or their connection
            // aborts.
            self.stats.restarts += 1;
            os.metric_inc("rendezvous.restart");
            self.drop_all_clients(os);
        }
    }

    fn on_event(&mut self, os: &mut Os<'_, '_>, ev: SockEvent) {
        match ev {
            SockEvent::UdpReceived { sock, from, data } if Some(sock) == self.probe_sock => {
                // The probe port answers anything with the observed source,
                // from its own (distinct) endpoint.
                let _ = data;
                let reply = Message::RegisterAck { public: from };
                let _ = os.udp_send(sock, from, reply.encode(self.cfg.obfuscate));
            }
            SockEvent::UdpReceived { from, data, .. } => match Message::decode(&data) {
                Ok(msg) => self.handle_udp(os, from, msg),
                Err(_) => {
                    self.stats.errors += 1;
                    os.metric_inc("rendezvous.error");
                }
            },
            SockEvent::TcpIncoming { listener } => {
                while let Ok(Some((conn, _remote))) = os.tcp_accept(listener) {
                    self.conns.insert(conn, ConnState::default());
                }
            }
            SockEvent::TcpReceived { sock, data } => {
                let Some(conn) = self.conns.get_mut(&sock) else {
                    return;
                };
                conn.frames.push(&data);
                while let Some(next) = self
                    .conns
                    .get_mut(&sock)
                    .and_then(|c| c.frames.next_message())
                {
                    match next {
                        Ok(msg) => self.handle_tcp(os, sock, msg),
                        Err(_) => {
                            self.stats.errors += 1;
                os.metric_inc("rendezvous.error");
                            let _ = os.tcp_abort(sock);
                            self.drop_conn(sock);
                            break;
                        }
                    }
                }
            }
            SockEvent::TcpPeerClosed { sock } => {
                let _ = os.close(sock);
                self.drop_conn(sock);
            }
            SockEvent::TcpAborted { sock, .. } => self.drop_conn(sock),
            _ => {}
        }
    }
}
