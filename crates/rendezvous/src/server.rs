//! The rendezvous server *S* (§3.1), with TURN-style relaying (§2.2) and
//! connection-reversal signalling (§2.3).
//!
//! One server app speaks the protocol over both transports at the same
//! well-known port: a UDP socket for UDP hole punching, and a TCP listener
//! for TCP hole punching. Registrations are kept per transport, because a
//! client's UDP and TCP public endpoints are distinct NAT mappings.

use crate::peer::PeerId;
use crate::wire::{
    decode_signed, encode_frame, encode_signed, FrameBuf, Message, WireError, AUTH_TAG_LEN,
    ERR_TABLE_FULL, ERR_UNKNOWN_PEER,
};
use bytes::Bytes;
use punch_net::{Endpoint, SimTime};
use punch_transport::{App, Os, SockEvent, SocketId};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::time::Duration;

/// Rendezvous server configuration.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Well-known port for both UDP and TCP service.
    pub port: u16,
    /// Whether endpoints in message bodies are obfuscated (§3.1). On by
    /// default; turning it off exposes the protocol to payload-mangling
    /// NATs (§5.3) — which is exactly experiment E11.
    pub obfuscate: bool,
    /// Also serve a mapping-probe port at `port + 1`, which answers any
    /// datagram with a [`Message::RegisterAck`] echoing the observed
    /// source. Clients use it to measure symmetric NATs' port-allocation
    /// delta for §5.1 port prediction.
    pub probe_port: bool,
    /// Maximum registrations kept per transport. A registration flood
    /// past the cap evicts the least-recently-active registration
    /// (deterministically — by activity sequence number, not map
    /// iteration order) instead of growing server memory without bound.
    pub max_clients: usize,
    /// The full fleet this server belongs to (every member's public
    /// endpoint, in the same order on every server and client). Empty
    /// or singleton means standalone operation: no forwarding, no
    /// server-to-server traffic — byte-identical to the pre-fleet
    /// server.
    pub fleet: Vec<Endpoint>,
    /// This server's position in [`ServerConfig::fleet`].
    pub fleet_index: usize,
    /// How many ring owners hold each peer's registration (k of n).
    /// Only consulted when forwarding: the owner chain for a missing
    /// target is the target's first `replication` ring owners.
    pub replication: usize,
    /// Per-source-IP token-bucket rate limit on the main UDP socket, in
    /// datagrams per second (bucket capacity = one second's tokens).
    /// `None` (the default, and the paper's implicit model) serves every
    /// datagram; an introduction or registration flood from one source
    /// then costs the same as legitimate traffic.
    pub rate_limit: Option<u32>,
    /// Protect-active eviction: a registration refreshed within this
    /// window is never the eviction victim; when every entry in a full
    /// table is protected, the *newcomer* is refused
    /// ([`crate::wire::ERR_TABLE_FULL`]) instead. `None` (the default)
    /// keeps pure oldest-first eviction, under which a squatting storm
    /// bigger than the table evicts even actively-refreshing clients.
    pub protect_active: Option<Duration>,
    /// Shared fleet secret: when set, server-to-server messages carry an
    /// [`AUTH_TAG_LEN`]-byte keyed tag and `Srv*` messages that arrive
    /// unsigned or mis-signed are rejected, closing the rogue-forgery
    /// hole (source-endpoint checks alone fall to spoofed sources).
    /// `None` (the default) trusts source endpoints, as PR 7's fleet did.
    pub fleet_secret: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            port: 1234,
            obfuscate: true,
            probe_port: true,
            max_clients: 4096,
            fleet: Vec::new(),
            fleet_index: 0,
            replication: 2,
            rate_limit: None,
            protect_active: None,
            fleet_secret: None,
        }
    }
}

impl ServerConfig {
    /// Same configuration with a different well-known port.
    pub fn with_port(mut self, port: u16) -> Self {
        self.port = port;
        self
    }

    /// Same configuration with endpoint obfuscation on or off.
    pub fn with_obfuscate(mut self, on: bool) -> Self {
        self.obfuscate = on;
        self
    }

    /// Same configuration with the §5.1 mapping-probe port on or off.
    pub fn with_probe_port(mut self, on: bool) -> Self {
        self.probe_port = on;
        self
    }

    /// Same configuration with a different per-transport registration
    /// cap.
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero.
    pub fn with_max_clients(mut self, max: usize) -> Self {
        assert!(max > 0, "max_clients must be positive");
        self.max_clients = max;
        self
    }

    /// Same configuration as member `index` of `fleet`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds for a non-empty fleet.
    pub fn with_fleet(mut self, fleet: Vec<Endpoint>, index: usize) -> Self {
        assert!(
            fleet.is_empty() || index < fleet.len(),
            "fleet_index {index} out of bounds for fleet of {}",
            fleet.len()
        );
        self.fleet = fleet;
        self.fleet_index = index;
        self
    }

    /// Same configuration with a different k-of-n replication factor.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn with_replication(mut self, k: usize) -> Self {
        assert!(k > 0, "replication must be positive");
        self.replication = k;
        self
    }

    /// Same configuration with a per-source UDP rate limit, in
    /// datagrams per second.
    ///
    /// # Panics
    ///
    /// Panics if `per_sec` is zero (that would refuse all traffic; turn
    /// the limiter off with `None` instead).
    pub fn with_rate_limit(mut self, per_sec: u32) -> Self {
        assert!(per_sec > 0, "rate_limit must be positive");
        self.rate_limit = Some(per_sec);
        self
    }

    /// Same configuration with protect-active eviction: registrations
    /// refreshed within `window` are never evicted.
    pub fn with_protect_active(mut self, window: Duration) -> Self {
        self.protect_active = Some(window);
        self
    }

    /// Same configuration with a shared fleet secret for authenticated
    /// server-to-server messages.
    pub fn with_fleet_secret(mut self, secret: u64) -> Self {
        self.fleet_secret = Some(secret);
        self
    }
}

/// Server-side counters (used by the relay-load experiment E12).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Registrations accepted (UDP + TCP).
    pub registrations: u64,
    /// Introduction pairs performed.
    pub introductions: u64,
    /// Relayed messages.
    pub relayed_msgs: u64,
    /// Relayed payload bytes.
    pub relayed_bytes: u64,
    /// Reversal requests forwarded.
    pub reversals: u64,
    /// Requests that failed (unknown peer, unparsable).
    pub errors: u64,
    /// Scripted restarts endured (registrations dropped each time).
    pub restarts: u64,
    /// Registrations evicted because the table hit
    /// [`ServerConfig::max_clients`].
    pub evictions: u64,
    /// Introductions forwarded to another fleet shard (sent
    /// [`Message::SrvIntroduce`], including owner-chain retries).
    pub forwards: u64,
    /// Forwarded introductions this shard served as the target's owner.
    pub forwards_served: u64,
    /// Forwarded introductions that exhausted the target's owner chain.
    pub forward_errors: u64,
    /// Datagrams refused by the per-source token bucket
    /// ([`ServerConfig::rate_limit`]).
    pub rate_limited: u64,
    /// Registrations refused because every slot was protected-active
    /// ([`ServerConfig::protect_active`]).
    pub reg_refused: u64,
    /// Server-to-server messages rejected for a missing or unverifiable
    /// authentication tag ([`ServerConfig::fleet_secret`]).
    pub auth_rejected: u64,
}

impl ServerStats {
    /// Accumulates another server's counters (fleet-wide totals).
    pub fn add(&mut self, other: &ServerStats) {
        self.registrations += other.registrations;
        self.introductions += other.introductions;
        self.relayed_msgs += other.relayed_msgs;
        self.relayed_bytes += other.relayed_bytes;
        self.reversals += other.reversals;
        self.errors += other.errors;
        self.restarts += other.restarts;
        self.evictions += other.evictions;
        self.forwards += other.forwards;
        self.forwards_served += other.forwards_served;
        self.forward_errors += other.forward_errors;
        self.rate_limited += other.rate_limited;
        self.reg_refused += other.reg_refused;
        self.auth_rejected += other.auth_rejected;
    }
}

#[derive(Clone, Copy, Debug)]
struct UdpReg {
    public: Endpoint,
    private: Endpoint,
    /// Activity stamp: refreshed on every registration, keepalive, or
    /// request from the client, so a full table evicts the
    /// least-recently-active entry, never a chatty long-lived one.
    seq: u64,
    /// Wall time of the last activity, for the protect-active window
    /// (the relative `seq` ordering cannot express "recent enough").
    last_active: SimTime,
}

#[derive(Clone, Copy, Debug)]
struct TcpReg {
    sock: SocketId,
    public: Endpoint,
    private: Endpoint,
    /// Activity stamp: refreshed on every registration, keepalive, or
    /// request from the client, so a full table evicts the
    /// least-recently-active entry, never a chatty long-lived one.
    seq: u64,
    /// Wall time of the last activity, for the protect-active window
    /// (the relative `seq` ordering cannot express "recent enough").
    last_active: SimTime,
}

/// Token-bucket state for one source IP, in micro-tokens (one datagram
/// costs [`MICRO`]; integer arithmetic keeps refills deterministic).
#[derive(Clone, Copy, Debug)]
struct Bucket {
    tokens: u64,
    last: SimTime,
}

/// Micro-tokens per datagram.
const MICRO: u64 = 1_000_000;

/// An introduction forwarded to the target's owning shard, awaiting
/// its [`Message::SrvIntroduceReply`] / [`Message::SrvIntroduceErr`].
struct PendingIntro {
    /// True when the requester registered over TCP.
    tcp: bool,
    /// How to reach the requester once the owner answers.
    requester_public: Endpoint,
    requester_private: Endpoint,
    requester_sock: Option<SocketId>,
    /// When the first forward left — the `rendezvous.introduce_forward` histogram
    /// observes reply minus this, across the whole retry chain.
    sent_at: punch_net::SimTime,
    /// The target's owner chain (self excluded), tried in order.
    owners: Vec<Endpoint>,
    /// Owners tried so far (index of the one in flight).
    tried: usize,
    /// Activity stamp for deterministic capping of the pending table.
    seq: u64,
}

#[derive(Default)]
struct ConnState {
    frames: FrameBuf,
    peer: Option<PeerId>,
}

/// The rendezvous server application. Run it on a public host:
///
/// ```
/// use punch_net::{LinkSpec, Sim};
/// use punch_rendezvous::{RendezvousServer, ServerConfig};
/// use punch_transport::{HostDevice, StackConfig};
///
/// let mut sim = Sim::new(0);
/// let s = sim.add_node(
///     "S",
///     Box::new(HostDevice::new(
///         [18, 181, 0, 31].into(),
///         StackConfig::default(),
///         Box::new(RendezvousServer::new(ServerConfig::default())),
///     )),
/// );
/// ```
pub struct RendezvousServer {
    cfg: ServerConfig,
    udp_sock: Option<SocketId>,
    probe_sock: Option<SocketId>,
    listener: Option<SocketId>,
    udp_clients: BTreeMap<PeerId, UdpReg>,
    /// Reverse index public endpoint → peer, so a bare UDP keepalive
    /// (which carries no peer id) can refresh its sender's activity
    /// stamp in O(log n).
    udp_by_ep: BTreeMap<Endpoint, PeerId>,
    tcp_clients: BTreeMap<PeerId, TcpReg>,
    conns: BTreeMap<SocketId, ConnState>,
    /// Cross-shard introductions in flight, keyed by
    /// `(requester, target, nonce)`.
    pending: BTreeMap<(u64, u64, u64), PendingIntro>,
    /// Per-source-IP token buckets ([`ServerConfig::rate_limit`]).
    buckets: BTreeMap<Ipv4Addr, Bucket>,
    stats: ServerStats,
    /// Monotone activity counter shared by both transports; stamps
    /// make the eviction victim (unique minimum) independent of
    /// `BTreeMap` iteration order.
    reg_seq: u64,
}

impl RendezvousServer {
    /// Creates the server app.
    ///
    /// # Panics
    ///
    /// Panics if the probe port is enabled on well-known port 65535:
    /// the probe listens on `port + 1`, which does not exist. Rejected
    /// here, at configuration time, instead of wrapping to port 0 (or
    /// panicking in debug) at bind time.
    pub fn new(cfg: ServerConfig) -> Self {
        assert!(
            !(cfg.probe_port && cfg.port == u16::MAX),
            "ServerConfig: probe_port requires port + 1, but port 65535 is the last u16; \
             pick a lower port or disable the probe"
        );
        RendezvousServer {
            cfg,
            udp_sock: None,
            probe_sock: None,
            listener: None,
            udp_clients: BTreeMap::new(),
            udp_by_ep: BTreeMap::new(),
            tcp_clients: BTreeMap::new(),
            conns: BTreeMap::new(),
            pending: BTreeMap::new(),
            buckets: BTreeMap::new(),
            stats: ServerStats::default(),
            reg_seq: 0,
        }
    }

    /// Returns server counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Returns a UDP-registered client's endpoints (tests).
    pub fn udp_registration(&self, peer: PeerId) -> Option<(Endpoint, Endpoint)> {
        self.udp_clients.get(&peer).map(|r| (r.public, r.private))
    }

    /// Returns a TCP-registered client's endpoints (tests).
    pub fn tcp_registration(&self, peer: PeerId) -> Option<(Endpoint, Endpoint)> {
        self.tcp_clients.get(&peer).map(|r| (r.public, r.private))
    }

    /// Draws the next activity stamp.
    fn next_seq(&mut self) -> u64 {
        let seq = self.reg_seq;
        self.reg_seq += 1;
        seq
    }

    /// Refreshes a UDP client's activity stamp (keepalive or request
    /// traffic counts as life; see the eviction policy on [`UdpReg`]).
    fn touch_udp(&mut self, peer: PeerId, now: SimTime) {
        if self.udp_clients.contains_key(&peer) {
            let seq = self.next_seq();
            if let Some(r) = self.udp_clients.get_mut(&peer) {
                r.seq = seq;
                r.last_active = now;
            }
        }
    }

    /// TCP counterpart of [`Self::touch_udp`].
    fn touch_tcp(&mut self, peer: PeerId, now: SimTime) {
        if self.tcp_clients.contains_key(&peer) {
            let seq = self.next_seq();
            if let Some(r) = self.tcp_clients.get_mut(&peer) {
                r.seq = seq;
                r.last_active = now;
            }
        }
    }

    /// True when `last_active` is stale enough to evict: outside the
    /// protect-active window, or the protection is off.
    fn evictable(&self, last_active: SimTime, now: SimTime) -> bool {
        match self.cfg.protect_active {
            Some(window) => now.saturating_since(last_active) >= window,
            None => true,
        }
    }

    /// Admits or refuses one datagram from `from` through the
    /// per-source token bucket. Always admits when the limiter is off.
    fn rate_allow(&mut self, os: &mut Os<'_, '_>, from: Endpoint) -> bool {
        let Some(rate) = self.cfg.rate_limit else {
            return true;
        };
        let now = os.now();
        let cap = u64::from(rate) * MICRO;
        let b = self.buckets.entry(from.ip).or_insert(Bucket {
            tokens: cap,
            last: now,
        });
        let elapsed =
            u64::try_from(now.saturating_since(b.last).as_nanos()).unwrap_or(u64::MAX);
        // rate tokens/s = rate × MICRO micro-tokens per 1e9 ns.
        b.tokens = b
            .tokens
            .saturating_add(elapsed.saturating_mul(u64::from(rate)) / 1000)
            .min(cap);
        b.last = now;
        if b.tokens >= MICRO {
            b.tokens -= MICRO;
            // Bound the bucket map: once it outgrows the client table,
            // drop sources whose bucket has (or by now would have)
            // refilled completely — forgetting them loses nothing.
            if self.buckets.len() > self.cfg.max_clients {
                let rate = u64::from(rate);
                self.buckets.retain(|_, b| {
                    let refill = u64::try_from(now.saturating_since(b.last).as_nanos())
                        .unwrap_or(u64::MAX)
                        .saturating_mul(rate)
                        / 1000;
                    b.tokens.saturating_add(refill) < cap
                });
            }
            true
        } else {
            self.stats.rate_limited += 1;
            os.metric_inc("defense.rendezvous.rate_limited");
            false
        }
    }

    /// This server's own fleet endpoint, when it is part of a fleet.
    fn self_endpoint(&self) -> Option<Endpoint> {
        self.cfg.fleet.get(self.cfg.fleet_index).copied()
    }

    /// True when cross-shard forwarding is in play: a fleet of at
    /// least two members that this server belongs to.
    fn fleet_routable(&self) -> bool {
        self.cfg.fleet.len() >= 2 && self.cfg.fleet_index < self.cfg.fleet.len()
    }

    /// True when `from` is another member of this server's fleet —
    /// the only senders whose server-to-server messages are honored.
    fn is_fleet_peer(&self, from: Endpoint) -> bool {
        self.fleet_routable()
            && Some(from) != self.self_endpoint()
            && self.cfg.fleet.contains(&from)
    }

    /// The target's owner chain with this server itself filtered out —
    /// where a missing registration may live.
    fn owner_chain(&self, target: PeerId) -> Vec<Endpoint> {
        let me = self.self_endpoint();
        crate::ring::owners(&self.cfg.fleet, target, self.cfg.replication)
            .into_iter()
            .filter(|e| Some(*e) != me)
            .collect()
    }

    /// Caps the pending-forward table like the registration tables:
    /// deterministic oldest-first eviction at `max_clients` entries.
    fn evict_oldest_pending(&mut self, os: &mut Os<'_, '_>) {
        if self.pending.len() < self.cfg.max_clients {
            return;
        }
        let victim = self
            .pending
            .iter()
            .min_by_key(|(key, p)| (p.seq, **key))
            .map(|(key, _)| *key);
        if let Some(key) = victim {
            self.pending.remove(&key);
            self.stats.forward_errors += 1;
            os.metric_inc_labeled("rendezvous.forward", "evict");
        }
    }

    /// Makes room for a new UDP registration when the table is full by
    /// evicting the oldest *evictable* entry. The victim is the unique
    /// minimum `(seq, peer_id)`, so the choice never depends on
    /// `BTreeMap` iteration order. Returns `false` when every entry is
    /// protected-active ([`ServerConfig::protect_active`]) — the
    /// newcomer must be refused instead.
    fn make_room_udp(&mut self, os: &mut Os<'_, '_>) -> bool {
        if self.udp_clients.len() < self.cfg.max_clients {
            return true;
        }
        let now = os.now();
        let victim = self
            .udp_clients
            .iter()
            .filter(|(_, r)| self.evictable(r.last_active, now))
            .min_by_key(|(id, r)| (r.seq, id.0))
            .map(|(&id, _)| id);
        if let Some(id) = victim {
            if let Some(reg) = self.udp_clients.remove(&id) {
                if self.udp_by_ep.get(&reg.public) == Some(&id) {
                    self.udp_by_ep.remove(&reg.public);
                }
            }
            self.stats.evictions += 1;
            os.metric_inc_labeled("rendezvous.evict", "udp");
            true
        } else {
            self.stats.reg_refused += 1;
            os.metric_inc("defense.rendezvous.reg_refused");
            false
        }
    }

    /// TCP counterpart of [`Self::make_room_udp`]; the victim's
    /// connection stays open (it may re-register), only its
    /// registration slot is reclaimed.
    fn make_room_tcp(&mut self, os: &mut Os<'_, '_>) -> bool {
        if self.tcp_clients.len() < self.cfg.max_clients {
            return true;
        }
        let now = os.now();
        let victim = self
            .tcp_clients
            .iter()
            .filter(|(_, r)| self.evictable(r.last_active, now))
            .min_by_key(|(id, r)| (r.seq, id.0))
            .map(|(&id, _)| id);
        if let Some(id) = victim {
            if let Some(reg) = self.tcp_clients.remove(&id) {
                if let Some(conn) = self.conns.get_mut(&reg.sock) {
                    conn.peer = None;
                }
            }
            self.stats.evictions += 1;
            os.metric_inc_labeled("rendezvous.evict", "tcp");
            true
        } else {
            self.stats.reg_refused += 1;
            os.metric_inc("defense.rendezvous.reg_refused");
            false
        }
    }

    fn send_udp(&self, os: &mut Os<'_, '_>, to: Endpoint, msg: &Message) {
        if let Some(sock) = self.udp_sock {
            let _ = os.udp_send(sock, to, msg.encode(self.cfg.obfuscate));
        }
    }

    /// Sends a server-to-server message, signed when the fleet shares a
    /// secret (wire bytes are identical to [`Self::send_udp`] otherwise).
    fn send_srv(&self, os: &mut Os<'_, '_>, to: Endpoint, msg: &Message) {
        match self.cfg.fleet_secret {
            Some(secret) => {
                if let Some(sock) = self.udp_sock {
                    let _ = os.udp_send(sock, to, encode_signed(msg, self.cfg.obfuscate, secret));
                }
            }
            None => self.send_udp(os, to, msg),
        }
    }

    /// Gate for inbound `Srv*` messages: with a fleet secret configured,
    /// only datagrams that carried a verified tag are honored.
    fn srv_authorized(&mut self, os: &mut Os<'_, '_>, signed: bool) -> bool {
        if self.cfg.fleet_secret.is_some() && !signed {
            self.stats.auth_rejected += 1;
            os.metric_inc("defense.rendezvous.auth_rejected");
            return false;
        }
        true
    }

    fn send_tcp(&self, os: &mut Os<'_, '_>, sock: SocketId, msg: &Message) {
        let _ = os.tcp_send(sock, &encode_frame(msg, self.cfg.obfuscate));
    }

    fn handle_udp(&mut self, os: &mut Os<'_, '_>, from: Endpoint, msg: Message, signed: bool) {
        match msg {
            Message::Register { peer_id, private } => {
                if !self.udp_clients.contains_key(&peer_id) && !self.make_room_udp(os) {
                    // Every slot is held by a protected-active client;
                    // the newcomer — not an active client — loses.
                    self.send_udp(
                        os,
                        from,
                        &Message::ErrorReply {
                            code: ERR_TABLE_FULL,
                        },
                    );
                    return;
                }
                let seq = self.next_seq();
                if let Some(old) = self.udp_clients.insert(
                    peer_id,
                    UdpReg {
                        public: from,
                        private,
                        seq,
                        last_active: os.now(),
                    },
                ) {
                    // Re-registration from a new mapping: retire the old
                    // endpoint's reverse-index entry (unless another peer
                    // has since claimed that endpoint).
                    if old.public != from && self.udp_by_ep.get(&old.public) == Some(&peer_id) {
                        self.udp_by_ep.remove(&old.public);
                    }
                }
                self.udp_by_ep.insert(from, peer_id);
                self.stats.registrations += 1;
                os.metric_inc_labeled("rendezvous.register", "udp");
                self.send_udp(os, from, &Message::RegisterAck { public: from });
            }
            Message::ConnectRequest {
                peer_id,
                target,
                nonce,
            } => {
                self.touch_udp(peer_id, os.now());
                let Some(req) = self.udp_clients.get(&peer_id).copied() else {
                    self.stats.errors += 1;
                    os.metric_inc("rendezvous.error");
                    self.send_udp(
                        os,
                        from,
                        &Message::ErrorReply {
                            code: ERR_UNKNOWN_PEER,
                        },
                    );
                    return;
                };
                let Some(tgt) = self.udp_clients.get(&target).copied() else {
                    // Not ours: in a fleet the target may be registered on
                    // its owning shard; standalone, it's simply unknown.
                    if self.fleet_routable() {
                        self.forward_introduce(
                            os,
                            peer_id,
                            req.public,
                            req.private,
                            None,
                            target,
                            nonce,
                            false,
                        );
                    } else {
                        self.stats.errors += 1;
                        os.metric_inc("rendezvous.error");
                        self.send_udp(
                            os,
                            from,
                            &Message::ErrorReply {
                                code: ERR_UNKNOWN_PEER,
                            },
                        );
                    }
                    return;
                };
                self.stats.introductions += 1;
                os.metric_inc_labeled("rendezvous.introduce", "udp");
                // §3.2 step 2: both sides learn each other's endpoints.
                self.send_udp(
                    os,
                    req.public,
                    &Message::Introduce {
                        peer: target,
                        public: tgt.public,
                        private: tgt.private,
                        nonce,
                        initiator: true,
                    },
                );
                self.send_udp(
                    os,
                    tgt.public,
                    &Message::Introduce {
                        peer: peer_id,
                        public: req.public,
                        private: req.private,
                        nonce,
                        initiator: false,
                    },
                );
            }
            Message::RelayData {
                from: sender,
                target,
                data,
            } => {
                self.touch_udp(sender, os.now());
                let Some(tgt) = self.udp_clients.get(&target).copied() else {
                    if self.fleet_routable() {
                        // Best-effort: hand the payload to the target's
                        // primary owner; no reply, no retry chain (relay
                        // traffic is periodic, the next send retries).
                        let chain = self.owner_chain(target);
                        if let Some(owner) = chain.first() {
                            os.metric_inc_labeled("rendezvous.forward", "relay");
                            self.send_srv(
                                os,
                                *owner,
                                &Message::SrvRelay {
                                    from: sender,
                                    target,
                                    data,
                                    tcp: false,
                                },
                            );
                            return;
                        }
                    }
                    self.stats.errors += 1;
                    os.metric_inc("rendezvous.error");
                    self.send_udp(
                        os,
                        from,
                        &Message::ErrorReply {
                            code: ERR_UNKNOWN_PEER,
                        },
                    );
                    return;
                };
                self.stats.relayed_msgs += 1;
                self.stats.relayed_bytes += data.len() as u64;
                os.metric_inc_labeled("rendezvous.relay.msgs", "udp");
                os.metric_inc_by("rendezvous.relay.bytes", data.len() as u64);
                self.send_udp(os, tgt.public, &Message::RelayedData { from: sender, data });
            }
            Message::ReversalRequest {
                peer_id,
                target,
                nonce,
            } => {
                self.touch_udp(peer_id, os.now());
                // Reversal stays shard-local by design: it only helps when
                // the target is unNATed and reachable, and those targets
                // register with every owner anyway (k-of-n).
                let (Some(req), Some(tgt)) = (
                    self.udp_clients.get(&peer_id).copied(),
                    self.udp_clients.get(&target).copied(),
                ) else {
                    self.stats.errors += 1;
                os.metric_inc("rendezvous.error");
                    self.send_udp(
                        os,
                        from,
                        &Message::ErrorReply {
                            code: ERR_UNKNOWN_PEER,
                        },
                    );
                    return;
                };
                self.stats.reversals += 1;
                os.metric_inc("rendezvous.reversal");
                self.send_udp(
                    os,
                    tgt.public,
                    &Message::ReversalRequested {
                        from: peer_id,
                        public: req.public,
                        private: req.private,
                        nonce,
                    },
                );
            }
            Message::Ping => {
                // A keepalive proves the client is alive: refresh its
                // activity stamp so a flash crowd of one-shot strangers
                // cannot evict it (the ping carries no id — the reverse
                // index recovers it from the source mapping).
                if let Some(&peer) = self.udp_by_ep.get(&from) {
                    self.touch_udp(peer, os.now());
                }
                self.send_udp(os, from, &Message::Pong);
            }
            Message::SrvIntroduce {
                requester,
                requester_public,
                requester_private,
                target,
                nonce,
                tcp,
            } => {
                if !self.srv_authorized(os, signed) {
                    return;
                }
                self.handle_srv_introduce(
                    os,
                    from,
                    requester,
                    requester_public,
                    requester_private,
                    target,
                    nonce,
                    tcp,
                );
            }
            Message::SrvIntroduceReply {
                requester,
                target,
                target_public,
                target_private,
                nonce,
                tcp: _,
            } => {
                if !self.srv_authorized(os, signed) {
                    return;
                }
                self.handle_srv_reply(os, from, requester, target, target_public, target_private, nonce);
            }
            Message::SrvIntroduceErr {
                requester,
                target,
                nonce,
                tcp: _,
            } => {
                if !self.srv_authorized(os, signed) {
                    return;
                }
                self.handle_srv_err(os, from, requester, target, nonce);
            }
            Message::SrvRelay {
                from: sender,
                target,
                data,
                tcp,
            } => {
                if !self.srv_authorized(os, signed) {
                    return;
                }
                self.handle_srv_relay(os, from, sender, target, data, tcp);
            }
            // Peer-to-peer and server-to-client messages are not for us.
            _ => {
                self.stats.errors += 1;
                os.metric_inc("rendezvous.error");
            }
        }
    }

    /// Sends (or re-sends, on owner-chain retry) a forward to the
    /// owner currently indexed by `pending[key].tried`.
    #[allow(clippy::too_many_arguments)]
    fn forward_introduce(
        &mut self,
        os: &mut Os<'_, '_>,
        requester: PeerId,
        requester_public: Endpoint,
        requester_private: Endpoint,
        requester_sock: Option<SocketId>,
        target: PeerId,
        nonce: u64,
        tcp: bool,
    ) {
        let owners = self.owner_chain(target);
        let Some(&first) = owners.first() else {
            // Every owner of the target is this very server — the
            // registration genuinely does not exist anywhere.
            self.stats.errors += 1;
            os.metric_inc("rendezvous.error");
            self.reply_unknown(os, requester_public, requester_sock, tcp);
            return;
        };
        let key = (requester.0, target.0, nonce);
        if !self.pending.contains_key(&key) {
            self.evict_oldest_pending(os);
        }
        let seq = self.next_seq();
        self.pending.insert(
            key,
            PendingIntro {
                tcp,
                requester_public,
                requester_private,
                requester_sock,
                sent_at: os.now(),
                owners,
                tried: 0,
                seq,
            },
        );
        self.stats.forwards += 1;
        os.metric_inc_labeled("rendezvous.forward", "sent");
        self.send_srv(
            os,
            first,
            &Message::SrvIntroduce {
                requester,
                requester_public,
                requester_private,
                target,
                nonce,
                tcp,
            },
        );
    }

    /// ErrorReply to a requester over whichever transport it used.
    fn reply_unknown(
        &mut self,
        os: &mut Os<'_, '_>,
        public: Endpoint,
        sock: Option<SocketId>,
        tcp: bool,
    ) {
        let msg = Message::ErrorReply {
            code: ERR_UNKNOWN_PEER,
        };
        if tcp {
            if let Some(sock) = sock {
                self.send_tcp(os, sock, &msg);
            }
        } else {
            self.send_udp(os, public, &msg);
        }
    }

    /// Owner side of a forwarded introduction: if the target is
    /// registered here, introduce it to the requester directly and
    /// return its endpoints to the forwarding shard; otherwise report
    /// the miss so the forwarder can try the next owner.
    #[allow(clippy::too_many_arguments)]
    fn handle_srv_introduce(
        &mut self,
        os: &mut Os<'_, '_>,
        from: Endpoint,
        requester: PeerId,
        requester_public: Endpoint,
        requester_private: Endpoint,
        target: PeerId,
        nonce: u64,
        tcp: bool,
    ) {
        if !self.is_fleet_peer(from) {
            self.stats.errors += 1;
            os.metric_inc("rendezvous.error");
            return;
        }
        let intro = Message::Introduce {
            peer: requester,
            public: requester_public,
            private: requester_private,
            nonce,
            initiator: false,
        };
        let found = if tcp {
            self.tcp_clients.get(&target).copied().map(|tgt| {
                self.send_tcp(os, tgt.sock, &intro);
                (tgt.public, tgt.private)
            })
        } else {
            self.udp_clients.get(&target).copied().map(|tgt| {
                self.send_udp(os, tgt.public, &intro);
                (tgt.public, tgt.private)
            })
        };
        match found {
            Some((target_public, target_private)) => {
                self.stats.forwards_served += 1;
                os.metric_inc_labeled("rendezvous.forward", "served");
                self.send_srv(
                    os,
                    from,
                    &Message::SrvIntroduceReply {
                        requester,
                        target,
                        target_public,
                        target_private,
                        nonce,
                        tcp,
                    },
                );
            }
            None => {
                os.metric_inc_labeled("rendezvous.forward", "miss");
                self.send_srv(
                    os,
                    from,
                    &Message::SrvIntroduceErr {
                        requester,
                        target,
                        nonce,
                        tcp,
                    },
                );
            }
        }
    }

    /// Forwarder side, success path: the owner introduced the target;
    /// complete the requester's half of the pair.
    #[allow(clippy::too_many_arguments)]
    fn handle_srv_reply(
        &mut self,
        os: &mut Os<'_, '_>,
        from: Endpoint,
        requester: PeerId,
        target: PeerId,
        target_public: Endpoint,
        target_private: Endpoint,
        nonce: u64,
    ) {
        if !self.is_fleet_peer(from) {
            self.stats.errors += 1;
            os.metric_inc("rendezvous.error");
            return;
        }
        let Some(p) = self.pending.remove(&(requester.0, target.0, nonce)) else {
            return; // duplicate or late reply; the pair already resolved
        };
        os.metric_observe("rendezvous.introduce_forward", os.now().saturating_since(p.sent_at));
        // The pair counts once, at the shard that fielded the client's
        // request (the owner counted forwards_served).
        self.stats.introductions += 1;
        os.metric_inc_labeled("rendezvous.introduce", if p.tcp { "tcp" } else { "udp" });
        let intro = Message::Introduce {
            peer: target,
            public: target_public,
            private: target_private,
            nonce,
            initiator: true,
        };
        if p.tcp {
            if let Some(sock) = p.requester_sock {
                self.send_tcp(os, sock, &intro);
            }
        } else {
            self.send_udp(os, p.requester_public, &intro);
        }
    }

    /// Forwarder side, miss path: try the target's next ring owner, or
    /// give the requester a definitive unknown-peer answer.
    fn handle_srv_err(
        &mut self,
        os: &mut Os<'_, '_>,
        from: Endpoint,
        requester: PeerId,
        target: PeerId,
        nonce: u64,
    ) {
        if !self.is_fleet_peer(from) {
            self.stats.errors += 1;
            os.metric_inc("rendezvous.error");
            return;
        }
        let key = (requester.0, target.0, nonce);
        let Some(mut p) = self.pending.remove(&key) else {
            return;
        };
        p.tried += 1;
        if let Some(&next) = p.owners.get(p.tried) {
            self.stats.forwards += 1;
            os.metric_inc_labeled("rendezvous.forward", "retry");
            let fwd = Message::SrvIntroduce {
                requester,
                requester_public: p.requester_public,
                requester_private: p.requester_private,
                target,
                nonce,
                tcp: p.tcp,
            };
            self.pending.insert(key, p);
            self.send_srv(os, next, &fwd);
        } else {
            self.stats.forward_errors += 1;
            os.metric_inc_labeled("rendezvous.forward", "err");
            self.stats.errors += 1;
            os.metric_inc("rendezvous.error");
            self.reply_unknown(os, p.requester_public, p.requester_sock, p.tcp);
        }
    }

    /// Owner side of a forwarded relay payload: deliver if the target
    /// is here, otherwise drop (relay is periodic; the sender's next
    /// payload retries the, possibly changed, ring).
    fn handle_srv_relay(
        &mut self,
        os: &mut Os<'_, '_>,
        from: Endpoint,
        sender: PeerId,
        target: PeerId,
        data: Bytes,
        tcp: bool,
    ) {
        if !self.is_fleet_peer(from) {
            self.stats.errors += 1;
            os.metric_inc("rendezvous.error");
            return;
        }
        let delivered = if tcp {
            self.tcp_clients.get(&target).copied().map(|tgt| {
                let n = data.len() as u64;
                self.send_tcp(os, tgt.sock, &Message::RelayedData { from: sender, data });
                ("tcp", n)
            })
        } else {
            self.udp_clients.get(&target).copied().map(|tgt| {
                let n = data.len() as u64;
                self.send_udp(os, tgt.public, &Message::RelayedData { from: sender, data });
                ("udp", n)
            })
        };
        match delivered {
            Some((transport, n)) => {
                self.stats.relayed_msgs += 1;
                self.stats.relayed_bytes += n;
                os.metric_inc_labeled("rendezvous.relay.msgs", transport);
                os.metric_inc_by("rendezvous.relay.bytes", n);
            }
            None => {
                os.metric_inc_labeled("rendezvous.forward", "relay-miss");
            }
        }
    }

    fn handle_tcp(&mut self, os: &mut Os<'_, '_>, sock: SocketId, msg: Message) {
        match msg {
            Message::Register { peer_id, private } => {
                let Ok(public) = os.remote_endpoint(sock) else {
                    return;
                };
                if !self.tcp_clients.contains_key(&peer_id) && !self.make_room_tcp(os) {
                    self.send_tcp(
                        os,
                        sock,
                        &Message::ErrorReply {
                            code: ERR_TABLE_FULL,
                        },
                    );
                    return;
                }
                let seq = self.next_seq();
                self.tcp_clients.insert(
                    peer_id,
                    TcpReg {
                        sock,
                        public,
                        private,
                        seq,
                        last_active: os.now(),
                    },
                );
                if let Some(conn) = self.conns.get_mut(&sock) {
                    conn.peer = Some(peer_id);
                }
                self.stats.registrations += 1;
                os.metric_inc_labeled("rendezvous.register", "tcp");
                self.send_tcp(os, sock, &Message::RegisterAck { public });
            }
            Message::ConnectRequest {
                peer_id,
                target,
                nonce,
            } => {
                self.touch_tcp(peer_id, os.now());
                let Some(req) = self.tcp_clients.get(&peer_id).copied() else {
                    self.stats.errors += 1;
                    os.metric_inc("rendezvous.error");
                    self.send_tcp(
                        os,
                        sock,
                        &Message::ErrorReply {
                            code: ERR_UNKNOWN_PEER,
                        },
                    );
                    return;
                };
                let Some(tgt) = self.tcp_clients.get(&target).copied() else {
                    if self.fleet_routable() {
                        self.forward_introduce(
                            os,
                            peer_id,
                            req.public,
                            req.private,
                            Some(req.sock),
                            target,
                            nonce,
                            true,
                        );
                    } else {
                        self.stats.errors += 1;
                        os.metric_inc("rendezvous.error");
                        self.send_tcp(
                            os,
                            sock,
                            &Message::ErrorReply {
                                code: ERR_UNKNOWN_PEER,
                            },
                        );
                    }
                    return;
                };
                self.stats.introductions += 1;
                os.metric_inc_labeled("rendezvous.introduce", "tcp");
                self.send_tcp(
                    os,
                    req.sock,
                    &Message::Introduce {
                        peer: target,
                        public: tgt.public,
                        private: tgt.private,
                        nonce,
                        initiator: true,
                    },
                );
                self.send_tcp(
                    os,
                    tgt.sock,
                    &Message::Introduce {
                        peer: peer_id,
                        public: req.public,
                        private: req.private,
                        nonce,
                        initiator: false,
                    },
                );
            }
            Message::RelayData {
                from: sender,
                target,
                data,
            } => {
                self.touch_tcp(sender, os.now());
                let Some(tgt) = self.tcp_clients.get(&target).copied() else {
                    if self.fleet_routable() {
                        let chain = self.owner_chain(target);
                        if let Some(owner) = chain.first() {
                            os.metric_inc_labeled("rendezvous.forward", "relay");
                            self.send_srv(
                                os,
                                *owner,
                                &Message::SrvRelay {
                                    from: sender,
                                    target,
                                    data,
                                    tcp: true,
                                },
                            );
                            return;
                        }
                    }
                    self.stats.errors += 1;
                    os.metric_inc("rendezvous.error");
                    self.send_tcp(
                        os,
                        sock,
                        &Message::ErrorReply {
                            code: ERR_UNKNOWN_PEER,
                        },
                    );
                    return;
                };
                self.stats.relayed_msgs += 1;
                self.stats.relayed_bytes += data.len() as u64;
                os.metric_inc_labeled("rendezvous.relay.msgs", "tcp");
                os.metric_inc_by("rendezvous.relay.bytes", data.len() as u64);
                self.send_tcp(os, tgt.sock, &Message::RelayedData { from: sender, data });
            }
            Message::ReversalRequest {
                peer_id,
                target,
                nonce,
            } => {
                self.touch_tcp(peer_id, os.now());
                let (Some(req), Some(tgt)) = (
                    self.tcp_clients.get(&peer_id).copied(),
                    self.tcp_clients.get(&target).copied(),
                ) else {
                    self.stats.errors += 1;
                os.metric_inc("rendezvous.error");
                    self.send_tcp(
                        os,
                        sock,
                        &Message::ErrorReply {
                            code: ERR_UNKNOWN_PEER,
                        },
                    );
                    return;
                };
                self.stats.reversals += 1;
                os.metric_inc("rendezvous.reversal");
                self.send_tcp(
                    os,
                    tgt.sock,
                    &Message::ReversalRequested {
                        from: peer_id,
                        public: req.public,
                        private: req.private,
                        nonce,
                    },
                );
            }
            Message::Ping => {
                // Keepalive over an established connection: the socket
                // identifies the peer; refresh its activity stamp.
                if let Some(peer) = self.conns.get(&sock).and_then(|c| c.peer) {
                    self.touch_tcp(peer, os.now());
                }
                self.send_tcp(os, sock, &Message::Pong);
            }
            _ => {
                self.stats.errors += 1;
                os.metric_inc("rendezvous.error");
            }
        }
    }

    /// Administratively aborts every client TCP connection and forgets
    /// the registrations — what clients observe when the server restarts.
    /// Failure-injection tests drive this; clients must re-register.
    pub fn drop_all_clients(&mut self, os: &mut Os<'_, '_>) {
        let socks: Vec<SocketId> = self.conns.keys().copied().collect();
        for sock in socks {
            let _ = os.tcp_abort(sock);
        }
        self.conns.clear();
        self.tcp_clients.clear();
        self.udp_clients.clear();
        self.udp_by_ep.clear();
        self.pending.clear();
    }

    fn drop_conn(&mut self, sock: SocketId) {
        if let Some(conn) = self.conns.remove(&sock) {
            if let Some(peer) = conn.peer {
                // Only drop the registration if it still points at this
                // connection (the client may have re-registered).
                if self.tcp_clients.get(&peer).map(|r| r.sock) == Some(sock) {
                    self.tcp_clients.remove(&peer);
                }
            }
        }
    }
}

impl App for RendezvousServer {
    fn on_start(&mut self, os: &mut Os<'_, '_>) {
        self.udp_sock = Some(os.udp_bind(self.cfg.port).expect("server UDP port free")); // punch-lint: allow(P001) configured server port on a fresh host; collision is a setup bug
        if self.cfg.probe_port {
            // checked_add, not `+ 1`: port 65535 would wrap to 0 in
            // release builds. Unreachable here — `new` rejects that
            // configuration — but the arithmetic must not rely on it.
            let probe = self
                .cfg
                .port
                .checked_add(1)
                .expect("probe port overflows u16; rejected in RendezvousServer::new"); // punch-lint: allow(P001) validated at construction: probe_port with port 65535 cannot be built
            self.probe_sock = Some(
                os.udp_bind(probe)
                    .expect("server probe port free"), // punch-lint: allow(P001) configured probe port on a fresh host; collision is a setup bug
            );
        }
        self.listener = Some(
            os.tcp_listen(self.cfg.port, false)
                .expect("server TCP port free"), // punch-lint: allow(P001) configured server port on a fresh host; collision is a setup bug
        );
    }

    fn on_fault(&mut self, os: &mut Os<'_, '_>, fault: u64) {
        if fault == punch_net::FAULT_RESTART {
            // A restarted server keeps its ports (same bind on boot) but
            // has an empty registration table; clients discover this only
            // when their next request goes unanswered or their connection
            // aborts.
            self.stats.restarts += 1;
            os.metric_inc("rendezvous.restart");
            self.drop_all_clients(os);
        }
    }

    fn on_event(&mut self, os: &mut Os<'_, '_>, ev: SockEvent) {
        match ev {
            SockEvent::UdpReceived { sock, from, data } if Some(sock) == self.probe_sock => {
                // The probe port answers anything with the observed source,
                // from its own (distinct) endpoint.
                let _ = data;
                let reply = Message::RegisterAck { public: from };
                let _ = os.udp_send(sock, from, reply.encode(self.cfg.obfuscate));
            }
            SockEvent::UdpReceived { from, data, .. } => {
                if !self.rate_allow(os, from) {
                    return;
                }
                match Message::decode(&data) {
                    Ok(msg) => self.handle_udp(os, from, msg, false),
                    // With a fleet secret, an 8-byte tail may be a signed
                    // server-to-server message: verify the tag before
                    // honoring it, and treat verification failure as a
                    // forgery, not a codec error.
                    Err(WireError::TrailingBytes(AUTH_TAG_LEN)) => {
                        match self.cfg.fleet_secret.map(|s| decode_signed(&data, s)) {
                            Some(Ok(msg)) => self.handle_udp(os, from, msg, true),
                            Some(Err(_)) => {
                                self.stats.auth_rejected += 1;
                                os.metric_inc("defense.rendezvous.auth_rejected");
                            }
                            None => {
                                self.stats.errors += 1;
                                os.metric_inc("rendezvous.error");
                            }
                        }
                    }
                    Err(_) => {
                        self.stats.errors += 1;
                        os.metric_inc("rendezvous.error");
                    }
                }
            }
            SockEvent::TcpIncoming { listener } => {
                while let Ok(Some((conn, _remote))) = os.tcp_accept(listener) {
                    self.conns.insert(conn, ConnState::default());
                }
            }
            SockEvent::TcpReceived { sock, data } => {
                let Some(conn) = self.conns.get_mut(&sock) else {
                    return;
                };
                conn.frames.push(&data);
                while let Some(next) = self
                    .conns
                    .get_mut(&sock)
                    .and_then(|c| c.frames.next_message())
                {
                    match next {
                        Ok(msg) => self.handle_tcp(os, sock, msg),
                        Err(_) => {
                            self.stats.errors += 1;
                os.metric_inc("rendezvous.error");
                            let _ = os.tcp_abort(sock);
                            self.drop_conn(sock);
                            break;
                        }
                    }
                }
            }
            SockEvent::TcpPeerClosed { sock } => {
                let _ = os.close(sock);
                self.drop_conn(sock);
            }
            SockEvent::TcpAborted { sock, .. } => self.drop_conn(sock),
            _ => {}
        }
    }
}
