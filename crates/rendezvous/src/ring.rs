//! Rendezvous-fleet ownership ring: highest-random-weight (HRW,
//! a.k.a. rendezvous) hashing over the fleet's endpoints.
//!
//! Every server and every client derives the same owner list for a
//! peer id from nothing but the fleet endpoint list — no coordination
//! traffic, no ring state to replicate, and membership changes move
//! only the keys whose owner actually changed. The weight function is
//! built on the workspace's own deterministic mixers
//! ([`punch_net::seed::mix`], a SplitMix64 finalizer), so the mapping
//! is stable across processes, platforms and worker counts.

use punch_net::seed;
use punch_net::Endpoint;

use crate::peer::PeerId;

/// Deterministic HRW weight of `server` for `peer`.
///
/// Mixes the server's full endpoint (ip and port — two fleet members
/// may share an ip) with the peer id through two rounds of the
/// SplitMix64 finalizer. Pure and allocation-free.
#[must_use]
pub fn weight(server: Endpoint, peer: PeerId) -> u64 {
    let ep = (u64::from(u32::from(server.ip)) << 16) | u64::from(server.port);
    seed::mix(seed::mix(ep) ^ seed::mix(peer.0))
}

/// The `k` fleet members that own `peer`'s registration, ordered by
/// descending HRW weight (ties broken by endpoint order so the list
/// is a unique function of its inputs).
///
/// The first entry is the *primary* owner; clients register with all
/// `k` and servers forward introductions to the owner chain in this
/// order. `k` is clamped to `1..=fleet.len()`; an empty fleet yields
/// an empty list.
#[must_use]
pub fn owners(fleet: &[Endpoint], peer: PeerId, k: usize) -> Vec<Endpoint> {
    let mut ranked: Vec<Endpoint> = fleet.to_vec();
    ranked.sort_by(|a, b| {
        weight(*b, peer)
            .cmp(&weight(*a, peer))
            .then_with(|| a.cmp(b))
    });
    ranked.truncate(k.max(1));
    ranked
}

/// True when `server` is one of the `k` owners of `peer`.
#[must_use]
pub fn owns(fleet: &[Endpoint], server: Endpoint, peer: PeerId, k: usize) -> bool {
    owners(fleet, peer, k).contains(&server)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn fleet(n: u16) -> Vec<Endpoint> {
        (0..n)
            .map(|j| {
                Endpoint::new(Ipv4Addr::new(18, 181, 0, 31 + j as u8), 1234)
            })
            .collect()
    }

    #[test]
    fn owners_are_deterministic_and_distinct() {
        let f = fleet(8);
        for id in 0..200u64 {
            let a = owners(&f, PeerId(id), 3);
            let b = owners(&f, PeerId(id), 3);
            assert_eq!(a, b);
            assert_eq!(a.len(), 3);
            let mut dedup = a.clone();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "owners must be distinct servers");
        }
    }

    #[test]
    fn k_is_clamped_to_fleet_bounds() {
        let f = fleet(4);
        assert_eq!(owners(&f, PeerId(7), 0).len(), 1);
        assert_eq!(owners(&f, PeerId(7), 99).len(), 4);
        assert!(owners(&[], PeerId(7), 2).is_empty());
    }

    #[test]
    fn single_server_fleet_always_owns() {
        let f = fleet(1);
        for id in 0..50u64 {
            assert_eq!(owners(&f, PeerId(id), 2), f);
            assert!(owns(&f, f[0], PeerId(id), 2));
        }
    }

    #[test]
    fn removing_a_server_only_moves_its_own_keys() {
        // The HRW property: keys not owned by the removed server keep
        // their primary owner.
        let full = fleet(8);
        let removed = full[3];
        let shrunk: Vec<Endpoint> = full.iter().copied().filter(|e| *e != removed).collect();
        for id in 0..500u64 {
            let before = owners(&full, PeerId(id), 1)[0];
            if before != removed {
                assert_eq!(owners(&shrunk, PeerId(id), 1)[0], before);
            }
        }
    }

    #[test]
    fn load_spreads_across_the_fleet() {
        let f = fleet(8);
        let mut counts = vec![0usize; f.len()];
        for id in 0..4000u64 {
            let primary = owners(&f, PeerId(id), 1)[0];
            let idx = f.iter().position(|e| *e == primary).unwrap();
            counts[idx] += 1;
        }
        // 4000 keys over 8 servers: expect 500 each; allow wide slack.
        for (i, c) in counts.iter().enumerate() {
            assert!(
                (250..=750).contains(c),
                "server {i} owns {c} of 4000 keys — distribution badly skewed"
            );
        }
    }

    #[test]
    fn weight_depends_on_port_as_well_as_ip() {
        let a = Endpoint::new(Ipv4Addr::new(10, 0, 0, 1), 1000);
        let b = Endpoint::new(Ipv4Addr::new(10, 0, 0, 1), 1001);
        assert_ne!(weight(a, PeerId(42)), weight(b, PeerId(42)));
    }
}
