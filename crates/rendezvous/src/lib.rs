//! # punch-rendezvous — the well-known server *S* and its protocol
//!
//! The rendezvous infrastructure every technique in the paper leans on:
//!
//! - [`wire`]: a compact binary protocol for registration, introduction
//!   (§3.2 steps 1–2), relaying (§2.2), connection reversal (§2.3) and
//!   peer-to-peer authentication, with optional one's-complement
//!   obfuscation of endpoint addresses (§3.1) to survive payload-mangling
//!   NATs (§5.3).
//! - [`RendezvousServer`]: the server application, speaking the protocol
//!   over UDP and TCP on the same well-known port, with per-transport
//!   registration tables and TURN-style relay accounting.
//! - [`ring`]: highest-random-weight (rendezvous) hashing that maps each
//!   peer id to its k-of-n owning servers in a fleet, used identically by
//!   clients (where to register) and servers (where to forward an
//!   introduction whose target is registered elsewhere).

pub mod peer;
pub mod ring;
pub mod server;
pub mod wire;

pub use peer::PeerId;
pub use server::{RendezvousServer, ServerConfig, ServerStats};
pub use wire::{
    auth_tag, decode_signed, encode_frame, encode_signed, FrameBuf, Message, WireError,
    AUTH_TAG_LEN, ERR_TABLE_FULL, ERR_UNKNOWN_PEER, MAX_BUFFER, MAX_FRAME, VERSION,
};
