//! Peer identities and authentication nonces.

use std::fmt;

/// Application-level identity of a client, registered with the rendezvous
/// server.
///
/// The paper leaves "host identity" to applications (§7); a 64-bit opaque
/// id is enough for the reproduction. Authentication of punched sessions
/// uses per-introduction nonces carried next to the id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeerId(pub u64);

impl fmt::Debug for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer{}", self.0)
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_ordering() {
        assert_eq!(PeerId(3).to_string(), "peer3");
        assert!(PeerId(1) < PeerId(2));
    }
}
