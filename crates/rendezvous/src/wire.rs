//! Wire protocol between clients, the rendezvous server, and peers.
//!
//! A compact hand-rolled binary codec (version byte, type byte, fixed-
//! width big-endian fields, length-prefixed blobs). Endpoints carried in
//! message *bodies* may be obfuscated by one's-complementing the address
//! octets (§3.1/§5.3) so payload-mangling NATs cannot corrupt them; the
//! flag byte preceding each endpoint records the representation, so
//! decoding is unambiguous either way.
//!
//! Over TCP the same messages are carried in 16-bit length-prefixed
//! frames ([`encode_frame`] / [`FrameBuf`]).

use crate::peer::PeerId;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use punch_net::Endpoint;
use std::fmt;
use std::net::Ipv4Addr;

/// Protocol version understood by this implementation.
pub const VERSION: u8 = 1;

/// Error code: the requested peer is not registered.
pub const ERR_UNKNOWN_PEER: u8 = 1;

/// Error code: the registration table is full of clients whose
/// activity protects them from eviction; the newcomer is refused.
pub const ERR_TABLE_FULL: u8 = 2;

/// Codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the message did.
    Truncated,
    /// Unknown version byte.
    BadVersion(u8),
    /// Unknown message tag.
    BadTag(u8),
    /// A frame length exceeded [`MAX_FRAME`].
    FrameTooLarge(usize),
    /// The message decoded but left unconsumed trailing bytes — a
    /// hostile padding trick or framing desync; strict decoders reject
    /// it rather than silently ignoring the tail.
    TrailingBytes(usize),
    /// A reassembly buffer exceeded its cap ([`MAX_BUFFER`]); the
    /// stream is poisoned and the connection should be torn down.
    Oversize(usize),
    /// A signed message's authentication tag did not verify — the
    /// sender does not hold the fleet secret (or the body was altered
    /// in flight).
    BadAuth,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t}"),
            WireError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::Oversize(n) => write!(f, "reassembly buffer overflow at {n} bytes"),
            WireError::BadAuth => write!(f, "authentication tag mismatch"),
        }
    }
}

impl std::error::Error for WireError {}

/// Maximum frame body accepted from a TCP stream.
pub const MAX_FRAME: usize = 16 * 1024;

/// Maximum bytes a [`FrameBuf`] will hold before declaring the stream
/// hostile: four maximal frames (with their length prefixes) of
/// lawfully bursty traffic, but never unbounded growth.
pub const MAX_BUFFER: usize = 4 * (MAX_FRAME + 2);

/// All protocol messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Client → S: register under `peer_id`, reporting the private
    /// endpoint the client believes it is using (§3.1).
    Register {
        /// Registering client.
        peer_id: PeerId,
        /// The client's own view of its endpoint.
        private: Endpoint,
    },
    /// S → client: registration accepted; `public` is the endpoint S
    /// observed in the packet headers.
    RegisterAck {
        /// The client's public endpoint as seen by S.
        public: Endpoint,
    },
    /// Client → S: please introduce me to `target` (§3.2 step 1).
    ConnectRequest {
        /// Requesting client.
        peer_id: PeerId,
        /// Peer to connect to.
        target: PeerId,
        /// Nonce echoed in the peer-to-peer authentication handshake.
        nonce: u64,
    },
    /// S → both clients: the other side's endpoints (§3.2 step 2).
    Introduce {
        /// The peer being introduced.
        peer: PeerId,
        /// Its public endpoint as observed by S.
        public: Endpoint,
        /// Its self-reported private endpoint.
        private: Endpoint,
        /// Session nonce (same on both sides).
        nonce: u64,
        /// True for the requesting side.
        initiator: bool,
    },
    /// Client → S: forward `data` to `target` over S (§2.2 relaying).
    RelayData {
        /// Sending client.
        from: PeerId,
        /// Receiving client.
        target: PeerId,
        /// Opaque payload.
        data: Bytes,
    },
    /// S → client: relayed payload from `from`.
    RelayedData {
        /// Original sender.
        from: PeerId,
        /// Opaque payload.
        data: Bytes,
    },
    /// Client → S: ask `target` to open a connection back to me
    /// (§2.3 connection reversal).
    ReversalRequest {
        /// Requesting client (the one behind no NAT, or unreachable).
        peer_id: PeerId,
        /// Peer asked to connect back.
        target: PeerId,
        /// Nonce for authenticating the reversed connection.
        nonce: u64,
    },
    /// S → client: `from` asks you to connect back to it.
    ReversalRequested {
        /// The peer that wants to be connected to.
        from: PeerId,
        /// Its public endpoint.
        public: Endpoint,
        /// Its private endpoint.
        private: Endpoint,
        /// Nonce for authenticating the reversed connection.
        nonce: u64,
    },
    /// Client → S keepalive.
    Ping,
    /// S → client keepalive answer.
    Pong,
    /// Peer → peer: authentication probe (§3.2 step 3 / §4.2 step 5).
    PeerHello {
        /// Sender's id.
        from: PeerId,
        /// The introduction nonce.
        nonce: u64,
    },
    /// Peer → peer: authentication acknowledgment.
    PeerHelloAck {
        /// Sender's id.
        from: PeerId,
        /// The introduction nonce.
        nonce: u64,
    },
    /// Peer → peer application payload.
    PeerData {
        /// Opaque payload.
        data: Bytes,
    },
    /// Peer → peer NAT keepalive (§3.6).
    KeepAlive,
    /// S → client: request failed.
    ErrorReply {
        /// One of the `ERR_*` codes.
        code: u8,
    },
    /// Server → server (fleet routing): a shard that received a
    /// connect/reversal request but does not hold the target's
    /// registration forwards it to the shard the ownership ring says
    /// owns the target. Carries everything the owner needs to
    /// introduce the *requester* to the target directly.
    SrvIntroduce {
        /// Requesting client.
        requester: PeerId,
        /// Requester's public endpoint as observed by the forwarding server.
        requester_public: Endpoint,
        /// Requester's self-reported private endpoint.
        requester_private: Endpoint,
        /// Peer the requester wants to reach.
        target: PeerId,
        /// Session nonce (same on both sides of the introduction).
        nonce: u64,
        /// True when the requester registered over TCP (the owner must
        /// introduce the target on its TCP table).
        tcp: bool,
    },
    /// Server → server (fleet routing): the owning shard found the
    /// target, introduced it to the requester directly, and returns
    /// the target's endpoints so the forwarding shard can complete the
    /// requester's half of the introduction.
    SrvIntroduceReply {
        /// Requesting client (correlates with [`Message::SrvIntroduce`]).
        requester: PeerId,
        /// The introduced peer.
        target: PeerId,
        /// Target's public endpoint as observed by its owning server.
        target_public: Endpoint,
        /// Target's self-reported private endpoint.
        target_private: Endpoint,
        /// Session nonce echoed from the forward.
        nonce: u64,
        /// Echo of the forward's transport flag.
        tcp: bool,
    },
    /// Server → server (fleet routing): the forwarded target is not
    /// registered on the queried shard either; the forwarding shard
    /// tries the next ring owner or reports `ERR_UNKNOWN_PEER`.
    SrvIntroduceErr {
        /// Requesting client (correlates with [`Message::SrvIntroduce`]).
        requester: PeerId,
        /// The peer that could not be found.
        target: PeerId,
        /// Session nonce echoed from the forward.
        nonce: u64,
        /// Echo of the forward's transport flag.
        tcp: bool,
    },
    /// Server → server (fleet routing): best-effort forward of a relay
    /// payload to the shard owning `target`'s registration.
    SrvRelay {
        /// Original sending client.
        from: PeerId,
        /// Receiving client (registered on the destination shard).
        target: PeerId,
        /// Opaque payload.
        data: Bytes,
        /// True when the payload must be delivered on the TCP table.
        tcp: bool,
    },
}

const TAG_REGISTER: u8 = 1;
const TAG_REGISTER_ACK: u8 = 2;
const TAG_CONNECT_REQUEST: u8 = 3;
const TAG_INTRODUCE: u8 = 4;
const TAG_RELAY_DATA: u8 = 5;
const TAG_RELAYED_DATA: u8 = 6;
const TAG_REVERSAL_REQUEST: u8 = 7;
const TAG_REVERSAL_REQUESTED: u8 = 8;
const TAG_PING: u8 = 9;
const TAG_PONG: u8 = 10;
const TAG_PEER_HELLO: u8 = 11;
const TAG_PEER_HELLO_ACK: u8 = 12;
const TAG_PEER_DATA: u8 = 13;
const TAG_KEEP_ALIVE: u8 = 14;
const TAG_ERROR: u8 = 15;
const TAG_SRV_INTRODUCE: u8 = 16;
const TAG_SRV_INTRODUCE_REPLY: u8 = 17;
const TAG_SRV_INTRODUCE_ERR: u8 = 18;
const TAG_SRV_RELAY: u8 = 19;

fn put_endpoint(buf: &mut BytesMut, ep: Endpoint, obfuscate: bool) {
    buf.put_u8(u8::from(obfuscate));
    let octets = ep.ip.octets();
    if obfuscate {
        buf.put_slice(&[!octets[0], !octets[1], !octets[2], !octets[3]]);
    } else {
        buf.put_slice(&octets);
    }
    buf.put_u16(ep.port);
}

fn get_endpoint(buf: &mut &[u8]) -> Result<Endpoint, WireError> {
    if buf.len() < 7 {
        return Err(WireError::Truncated);
    }
    let obf = buf.get_u8() != 0;
    let mut o = [0u8; 4];
    buf.copy_to_slice(&mut o);
    if obf {
        o = [!o[0], !o[1], !o[2], !o[3]];
    }
    let port = buf.get_u16();
    Ok(Endpoint::new(Ipv4Addr::from(o), port))
}

fn put_bytes(buf: &mut BytesMut, data: &Bytes) {
    buf.put_u16(u16::try_from(data.len()).expect("payload too large for wire format")); // punch-lint: allow(P001) encoder-controlled payloads stay under the u16 frame cap; checked so oversize can never truncate
    buf.put_slice(data);
}

fn get_bytes(buf: &mut &[u8]) -> Result<Bytes, WireError> {
    if buf.len() < 2 {
        return Err(WireError::Truncated);
    }
    let len = buf.get_u16() as usize;
    if buf.len() < len {
        return Err(WireError::Truncated);
    }
    let out = Bytes::copy_from_slice(&buf[..len]);
    buf.advance(len);
    Ok(out)
}

fn get_u64(buf: &mut &[u8]) -> Result<u64, WireError> {
    if buf.len() < 8 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u64())
}

fn get_u8(buf: &mut &[u8]) -> Result<u8, WireError> {
    if buf.is_empty() {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u8())
}

impl Message {
    /// Encodes the message. When `obfuscate` is set, endpoint addresses in
    /// the body are one's-complemented to survive payload-mangling NATs.
    pub fn encode(&self, obfuscate: bool) -> Bytes {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(VERSION);
        match self {
            Message::Register { peer_id, private } => {
                buf.put_u8(TAG_REGISTER);
                buf.put_u64(peer_id.0);
                put_endpoint(&mut buf, *private, obfuscate);
            }
            Message::RegisterAck { public } => {
                buf.put_u8(TAG_REGISTER_ACK);
                put_endpoint(&mut buf, *public, obfuscate);
            }
            Message::ConnectRequest {
                peer_id,
                target,
                nonce,
            } => {
                buf.put_u8(TAG_CONNECT_REQUEST);
                buf.put_u64(peer_id.0);
                buf.put_u64(target.0);
                buf.put_u64(*nonce);
            }
            Message::Introduce {
                peer,
                public,
                private,
                nonce,
                initiator,
            } => {
                buf.put_u8(TAG_INTRODUCE);
                buf.put_u64(peer.0);
                put_endpoint(&mut buf, *public, obfuscate);
                put_endpoint(&mut buf, *private, obfuscate);
                buf.put_u64(*nonce);
                buf.put_u8(u8::from(*initiator));
            }
            Message::RelayData { from, target, data } => {
                buf.put_u8(TAG_RELAY_DATA);
                buf.put_u64(from.0);
                buf.put_u64(target.0);
                put_bytes(&mut buf, data);
            }
            Message::RelayedData { from, data } => {
                buf.put_u8(TAG_RELAYED_DATA);
                buf.put_u64(from.0);
                put_bytes(&mut buf, data);
            }
            Message::ReversalRequest {
                peer_id,
                target,
                nonce,
            } => {
                buf.put_u8(TAG_REVERSAL_REQUEST);
                buf.put_u64(peer_id.0);
                buf.put_u64(target.0);
                buf.put_u64(*nonce);
            }
            Message::ReversalRequested {
                from,
                public,
                private,
                nonce,
            } => {
                buf.put_u8(TAG_REVERSAL_REQUESTED);
                buf.put_u64(from.0);
                put_endpoint(&mut buf, *public, obfuscate);
                put_endpoint(&mut buf, *private, obfuscate);
                buf.put_u64(*nonce);
            }
            Message::Ping => buf.put_u8(TAG_PING),
            Message::Pong => buf.put_u8(TAG_PONG),
            Message::PeerHello { from, nonce } => {
                buf.put_u8(TAG_PEER_HELLO);
                buf.put_u64(from.0);
                buf.put_u64(*nonce);
            }
            Message::PeerHelloAck { from, nonce } => {
                buf.put_u8(TAG_PEER_HELLO_ACK);
                buf.put_u64(from.0);
                buf.put_u64(*nonce);
            }
            Message::PeerData { data } => {
                buf.put_u8(TAG_PEER_DATA);
                put_bytes(&mut buf, data);
            }
            Message::KeepAlive => buf.put_u8(TAG_KEEP_ALIVE),
            Message::ErrorReply { code } => {
                buf.put_u8(TAG_ERROR);
                buf.put_u8(*code);
            }
            Message::SrvIntroduce {
                requester,
                requester_public,
                requester_private,
                target,
                nonce,
                tcp,
            } => {
                buf.put_u8(TAG_SRV_INTRODUCE);
                buf.put_u64(requester.0);
                put_endpoint(&mut buf, *requester_public, obfuscate);
                put_endpoint(&mut buf, *requester_private, obfuscate);
                buf.put_u64(target.0);
                buf.put_u64(*nonce);
                buf.put_u8(u8::from(*tcp));
            }
            Message::SrvIntroduceReply {
                requester,
                target,
                target_public,
                target_private,
                nonce,
                tcp,
            } => {
                buf.put_u8(TAG_SRV_INTRODUCE_REPLY);
                buf.put_u64(requester.0);
                buf.put_u64(target.0);
                put_endpoint(&mut buf, *target_public, obfuscate);
                put_endpoint(&mut buf, *target_private, obfuscate);
                buf.put_u64(*nonce);
                buf.put_u8(u8::from(*tcp));
            }
            Message::SrvIntroduceErr {
                requester,
                target,
                nonce,
                tcp,
            } => {
                buf.put_u8(TAG_SRV_INTRODUCE_ERR);
                buf.put_u64(requester.0);
                buf.put_u64(target.0);
                buf.put_u64(*nonce);
                buf.put_u8(u8::from(*tcp));
            }
            Message::SrvRelay {
                from,
                target,
                data,
                tcp,
            } => {
                buf.put_u8(TAG_SRV_RELAY);
                buf.put_u64(from.0);
                buf.put_u64(target.0);
                put_bytes(&mut buf, data);
                buf.put_u8(u8::from(*tcp));
            }
        }
        buf.freeze()
    }

    /// Decodes one message from `data`.
    pub fn decode(data: &[u8]) -> Result<Message, WireError> {
        let mut buf = data;
        let version = get_u8(&mut buf)?;
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let tag = get_u8(&mut buf)?;
        let msg = match tag {
            TAG_REGISTER => Message::Register {
                peer_id: PeerId(get_u64(&mut buf)?),
                private: get_endpoint(&mut buf)?,
            },
            TAG_REGISTER_ACK => Message::RegisterAck {
                public: get_endpoint(&mut buf)?,
            },
            TAG_CONNECT_REQUEST => Message::ConnectRequest {
                peer_id: PeerId(get_u64(&mut buf)?),
                target: PeerId(get_u64(&mut buf)?),
                nonce: get_u64(&mut buf)?,
            },
            TAG_INTRODUCE => Message::Introduce {
                peer: PeerId(get_u64(&mut buf)?),
                public: get_endpoint(&mut buf)?,
                private: get_endpoint(&mut buf)?,
                nonce: get_u64(&mut buf)?,
                initiator: get_u8(&mut buf)? != 0,
            },
            TAG_RELAY_DATA => Message::RelayData {
                from: PeerId(get_u64(&mut buf)?),
                target: PeerId(get_u64(&mut buf)?),
                data: get_bytes(&mut buf)?,
            },
            TAG_RELAYED_DATA => Message::RelayedData {
                from: PeerId(get_u64(&mut buf)?),
                data: get_bytes(&mut buf)?,
            },
            TAG_REVERSAL_REQUEST => Message::ReversalRequest {
                peer_id: PeerId(get_u64(&mut buf)?),
                target: PeerId(get_u64(&mut buf)?),
                nonce: get_u64(&mut buf)?,
            },
            TAG_REVERSAL_REQUESTED => Message::ReversalRequested {
                from: PeerId(get_u64(&mut buf)?),
                public: get_endpoint(&mut buf)?,
                private: get_endpoint(&mut buf)?,
                nonce: get_u64(&mut buf)?,
            },
            TAG_PING => Message::Ping,
            TAG_PONG => Message::Pong,
            TAG_PEER_HELLO => Message::PeerHello {
                from: PeerId(get_u64(&mut buf)?),
                nonce: get_u64(&mut buf)?,
            },
            TAG_PEER_HELLO_ACK => Message::PeerHelloAck {
                from: PeerId(get_u64(&mut buf)?),
                nonce: get_u64(&mut buf)?,
            },
            TAG_PEER_DATA => Message::PeerData {
                data: get_bytes(&mut buf)?,
            },
            TAG_KEEP_ALIVE => Message::KeepAlive,
            TAG_ERROR => Message::ErrorReply {
                code: get_u8(&mut buf)?,
            },
            TAG_SRV_INTRODUCE => Message::SrvIntroduce {
                requester: PeerId(get_u64(&mut buf)?),
                requester_public: get_endpoint(&mut buf)?,
                requester_private: get_endpoint(&mut buf)?,
                target: PeerId(get_u64(&mut buf)?),
                nonce: get_u64(&mut buf)?,
                tcp: get_u8(&mut buf)? != 0,
            },
            TAG_SRV_INTRODUCE_REPLY => Message::SrvIntroduceReply {
                requester: PeerId(get_u64(&mut buf)?),
                target: PeerId(get_u64(&mut buf)?),
                target_public: get_endpoint(&mut buf)?,
                target_private: get_endpoint(&mut buf)?,
                nonce: get_u64(&mut buf)?,
                tcp: get_u8(&mut buf)? != 0,
            },
            TAG_SRV_INTRODUCE_ERR => Message::SrvIntroduceErr {
                requester: PeerId(get_u64(&mut buf)?),
                target: PeerId(get_u64(&mut buf)?),
                nonce: get_u64(&mut buf)?,
                tcp: get_u8(&mut buf)? != 0,
            },
            TAG_SRV_RELAY => Message::SrvRelay {
                from: PeerId(get_u64(&mut buf)?),
                target: PeerId(get_u64(&mut buf)?),
                data: get_bytes(&mut buf)?,
                tcp: get_u8(&mut buf)? != 0,
            },
            other => return Err(WireError::BadTag(other)),
        };
        if !buf.is_empty() {
            // Strict: a valid message followed by garbage is not a valid
            // message. Lenient trailing-byte acceptance would let one
            // datagram smuggle a second, unparsed payload past the codec.
            return Err(WireError::TrailingBytes(buf.len()));
        }
        Ok(msg)
    }
}

/// Size of the authentication tag appended by [`encode_signed`].
pub const AUTH_TAG_LEN: usize = 8;

/// Keyed tag over a message body: FNV-1a over the bytes, folded with the
/// shared secret. Not cryptography — the simulation models *possession
/// of a shared secret*, and an off-path forger without it cannot produce
/// a verifying tag; collision resistance beyond that is out of scope.
pub fn auth_tag(body: &[u8], secret: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ secret;
    for &b in body {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= secret.rotate_left(17);
    h.wrapping_mul(0x0000_0100_0000_01b3)
}

/// Encodes a message and appends an [`AUTH_TAG_LEN`]-byte keyed tag, for
/// server-to-server traffic inside a fleet that shares `secret`.
pub fn encode_signed(msg: &Message, obfuscate: bool, secret: u64) -> Bytes {
    let body = msg.encode(obfuscate);
    let mut buf = BytesMut::with_capacity(body.len() + AUTH_TAG_LEN);
    buf.put_slice(&body);
    buf.put_u64(auth_tag(&body, secret));
    buf.freeze()
}

/// Decodes a message produced by [`encode_signed`], verifying its tag
/// against `secret`. A datagram without the trailing tag, or whose tag
/// does not verify, is rejected with [`WireError::BadAuth`].
pub fn decode_signed(data: &[u8], secret: u64) -> Result<Message, WireError> {
    let Some(split) = data.len().checked_sub(AUTH_TAG_LEN) else {
        return Err(WireError::BadAuth);
    };
    let (body, tag) = data.split_at(split);
    let mut tag_bytes = tag;
    if tag_bytes.get_u64() != auth_tag(body, secret) {
        return Err(WireError::BadAuth);
    }
    Message::decode(body)
}

/// Encodes a message as a length-prefixed TCP frame.
pub fn encode_frame(msg: &Message, obfuscate: bool) -> Bytes {
    let body = msg.encode(obfuscate);
    let mut buf = BytesMut::with_capacity(body.len() + 2);
    buf.put_u16(u16::try_from(body.len()).expect("frame too large")); // punch-lint: allow(P001) encoder-controlled bodies stay under the u16 frame cap; checked so oversize can never truncate
    buf.put_slice(&body);
    buf.freeze()
}

/// Incremental TCP frame reassembler.
///
/// Feed stream chunks with [`FrameBuf::push`], then drain complete
/// messages with [`FrameBuf::next_message`]. Buffering is bounded by
/// [`MAX_BUFFER`]: a sender that streams bytes faster than frames
/// complete poisons the reassembler instead of growing host memory,
/// and every subsequent [`FrameBuf::next_message`] reports
/// [`WireError::Oversize`] (framing sync is unrecoverable, so callers
/// should drop the connection).
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: BytesMut,
    /// Set when the cap was breached; the buffered bytes are discarded
    /// and the stream permanently errors.
    overflowed: bool,
}

impl FrameBuf {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        FrameBuf::default()
    }

    /// Appends stream bytes. Exceeding [`MAX_BUFFER`] poisons the
    /// reassembler: buffered bytes are dropped and further pushes are
    /// ignored.
    pub fn push(&mut self, chunk: &[u8]) {
        if self.overflowed {
            return;
        }
        if self.buf.len() + chunk.len() > MAX_BUFFER {
            self.overflowed = true;
            self.buf = BytesMut::new();
            return;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Pops the next complete message, if any. A poisoned reassembler
    /// (see [`FrameBuf::push`]) yields [`WireError::Oversize`] forever.
    pub fn next_message(&mut self) -> Option<Result<Message, WireError>> {
        if self.overflowed {
            return Some(Err(WireError::Oversize(MAX_BUFFER)));
        }
        if self.buf.len() < 2 {
            return None;
        }
        let len = u16::from_be_bytes([self.buf[0], self.buf[1]]) as usize;
        if len > MAX_FRAME {
            return Some(Err(WireError::FrameTooLarge(len)));
        }
        if self.buf.len() < 2 + len {
            return None;
        }
        self.buf.advance(2);
        let body = self.buf.split_to(len);
        Some(Message::decode(&body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(s: &str) -> Endpoint {
        s.parse().unwrap()
    }

    fn all_messages() -> Vec<Message> {
        vec![
            Message::Register {
                peer_id: PeerId(7),
                private: ep("10.0.0.1:4321"),
            },
            Message::RegisterAck {
                public: ep("155.99.25.11:62000"),
            },
            Message::ConnectRequest {
                peer_id: PeerId(7),
                target: PeerId(9),
                nonce: 0xdead,
            },
            Message::Introduce {
                peer: PeerId(9),
                public: ep("138.76.29.7:31000"),
                private: ep("10.1.1.3:4321"),
                nonce: 0xdead,
                initiator: true,
            },
            Message::RelayData {
                from: PeerId(7),
                target: PeerId(9),
                data: Bytes::from_static(b"hi"),
            },
            Message::RelayedData {
                from: PeerId(7),
                data: Bytes::from_static(b"hi"),
            },
            Message::ReversalRequest {
                peer_id: PeerId(7),
                target: PeerId(9),
                nonce: 5,
            },
            Message::ReversalRequested {
                from: PeerId(7),
                public: ep("1.2.3.4:5"),
                private: ep("10.0.0.9:5"),
                nonce: 5,
            },
            Message::Ping,
            Message::Pong,
            Message::PeerHello {
                from: PeerId(7),
                nonce: 1,
            },
            Message::PeerHelloAck {
                from: PeerId(9),
                nonce: 1,
            },
            Message::PeerData {
                data: Bytes::from_static(b"payload"),
            },
            Message::KeepAlive,
            Message::ErrorReply {
                code: ERR_UNKNOWN_PEER,
            },
            Message::SrvIntroduce {
                requester: PeerId(7),
                requester_public: ep("155.99.25.11:62000"),
                requester_private: ep("10.0.0.1:4321"),
                target: PeerId(9),
                nonce: 0xdead,
                tcp: false,
            },
            Message::SrvIntroduceReply {
                requester: PeerId(7),
                target: PeerId(9),
                target_public: ep("138.76.29.7:31000"),
                target_private: ep("10.1.1.3:4321"),
                nonce: 0xdead,
                tcp: true,
            },
            Message::SrvIntroduceErr {
                requester: PeerId(7),
                target: PeerId(9),
                nonce: 0xdead,
                tcp: false,
            },
            Message::SrvRelay {
                from: PeerId(7),
                target: PeerId(9),
                data: Bytes::from_static(b"hi"),
                tcp: true,
            },
        ]
    }

    #[test]
    fn roundtrip_plain_and_obfuscated() {
        for msg in all_messages() {
            for obf in [false, true] {
                let enc = msg.encode(obf);
                let dec = Message::decode(&enc).unwrap_or_else(|e| panic!("{msg:?} ({obf}): {e}"));
                assert_eq!(dec, msg, "obfuscate={obf}");
            }
        }
    }

    #[test]
    fn obfuscation_hides_address_octets() {
        let msg = Message::Register {
            peer_id: PeerId(1),
            private: ep("10.0.0.1:4321"),
        };
        let plain = msg.encode(false);
        let obf = msg.encode(true);
        let octets = [10u8, 0, 0, 1];
        let contains = |hay: &[u8], needle: &[u8]| hay.windows(needle.len()).any(|w| w == needle);
        assert!(contains(&plain, &octets));
        assert!(!contains(&obf, &octets));
    }

    #[test]
    fn truncated_inputs_error_not_panic() {
        for msg in all_messages() {
            let enc = msg.encode(false);
            for cut in 0..enc.len() {
                if let Ok(m) = Message::decode(&enc[..cut]) {
                    // Prefix-decoding may succeed only for messages whose
                    // tail is a suffix of another valid encoding; none of
                    // ours are, except exact length.
                    assert_eq!(cut, enc.len(), "short decode produced {m:?}");
                }
            }
        }
    }

    #[test]
    fn bad_version_and_tag() {
        assert_eq!(
            Message::decode(&[9, TAG_PING]),
            Err(WireError::BadVersion(9))
        );
        assert_eq!(
            Message::decode(&[VERSION, 200]),
            Err(WireError::BadTag(200))
        );
        assert_eq!(Message::decode(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        for msg in all_messages() {
            for obf in [false, true] {
                let mut enc = msg.encode(obf).to_vec();
                enc.push(0x00);
                assert_eq!(
                    Message::decode(&enc),
                    Err(WireError::TrailingBytes(1)),
                    "{msg:?} obfuscate={obf}"
                );
                enc.extend_from_slice(b"junk");
                assert_eq!(Message::decode(&enc), Err(WireError::TrailingBytes(5)));
            }
        }
    }

    #[test]
    fn signed_roundtrip_and_forgery_rejection() {
        let secret = 0x5eed_f1ee_7001_u64;
        for msg in all_messages() {
            for obf in [false, true] {
                let enc = encode_signed(&msg, obf, secret);
                assert_eq!(enc.len(), msg.encode(obf).len() + AUTH_TAG_LEN);
                assert_eq!(decode_signed(&enc, secret), Ok(msg.clone()));
                // Wrong secret: the forger guessed the format but not the key.
                assert_eq!(
                    decode_signed(&enc, secret ^ 1),
                    Err(WireError::BadAuth),
                    "{msg:?}"
                );
                // Unsigned bytes fail verification (no valid tag suffix).
                assert_eq!(
                    decode_signed(&msg.encode(obf), secret),
                    Err(WireError::BadAuth),
                    "{msg:?}"
                );
                // The strict plain decoder still rejects the signed form,
                // seeing the tag as trailing garbage.
                assert_eq!(
                    Message::decode(&enc),
                    Err(WireError::TrailingBytes(AUTH_TAG_LEN))
                );
            }
        }
    }

    #[test]
    fn auth_tag_covers_every_body_byte() {
        let secret = 42_u64;
        let msg = Message::SrvIntroduceErr {
            requester: PeerId(7),
            target: PeerId(9),
            nonce: 0xdead,
            tcp: false,
        };
        let enc = encode_signed(&msg, false, secret);
        for i in 0..enc.len() - AUTH_TAG_LEN {
            let mut bent = enc.to_vec();
            bent[i] ^= 0x80;
            assert!(
                decode_signed(&bent, secret).is_err(),
                "flipping body byte {i} must not verify"
            );
        }
    }

    #[test]
    fn framebuf_overflow_poisons_the_stream() {
        let mut fb = FrameBuf::new();
        // Declare a lawful MAX_FRAME frame so the reassembler must
        // buffer, then keep streaming bytes past the cap.
        fb.push(&(MAX_FRAME as u16).to_be_bytes());
        let chunk = vec![0u8; 4096];
        for _ in 0..(MAX_BUFFER / chunk.len() + 2) {
            fb.push(&chunk);
        }
        assert_eq!(fb.next_message(), Some(Err(WireError::Oversize(MAX_BUFFER))));
        // Poisoned: further input is ignored, the error persists.
        fb.push(&encode_frame(&Message::Ping, false));
        assert_eq!(fb.next_message(), Some(Err(WireError::Oversize(MAX_BUFFER))));
    }

    #[test]
    fn framebuf_accepts_bursts_below_the_cap() {
        // Four maximal frames back to back exactly fill the cap and
        // decode (body = version + tag + u16 length + data).
        let big = Message::PeerData {
            data: Bytes::from(vec![0x42u8; MAX_FRAME - 4]),
        };
        let frame = encode_frame(&big, false);
        let mut fb = FrameBuf::new();
        for _ in 0..4 {
            fb.push(&frame);
        }
        for _ in 0..4 {
            assert_eq!(fb.next_message(), Some(Ok(big.clone())));
        }
        assert_eq!(fb.next_message(), None);
    }

    #[test]
    fn frame_reassembly_across_arbitrary_chunks() {
        let msgs = all_messages();
        let mut stream = BytesMut::new();
        for m in &msgs {
            stream.extend_from_slice(&encode_frame(m, false));
        }
        // Feed in 3-byte chunks.
        let mut fb = FrameBuf::new();
        let mut decoded = Vec::new();
        for chunk in stream.chunks(3) {
            fb.push(chunk);
            while let Some(m) = fb.next_message() {
                decoded.push(m.unwrap());
            }
        }
        assert_eq!(decoded, msgs);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut fb = FrameBuf::new();
        fb.push(&(u16::MAX).to_be_bytes());
        assert_eq!(
            fb.next_message(),
            Some(Err(WireError::FrameTooLarge(u16::MAX as usize)))
        );
    }

    #[test]
    fn empty_and_partial_frames_wait_for_more() {
        let mut fb = FrameBuf::new();
        assert!(fb.next_message().is_none());
        fb.push(&[0]);
        assert!(fb.next_message().is_none());
        let frame = encode_frame(&Message::Ping, false);
        fb.push(&frame[1..]); // complete the length byte + body
        assert_eq!(fb.next_message(), Some(Ok(Message::Ping)));
    }
}
