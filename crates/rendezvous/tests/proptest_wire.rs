//! Property tests for the wire codec: round-trips for arbitrary
//! messages, and no panics on arbitrary byte soup.

use bytes::Bytes;
use proptest::prelude::*;
use punch_net::Endpoint;
use punch_rendezvous::{encode_frame, FrameBuf, Message, PeerId, WireError, MAX_BUFFER};

fn arb_endpoint() -> impl Strategy<Value = Endpoint> {
    (any::<[u8; 4]>(), any::<u16>()).prop_map(|(o, p)| Endpoint::new(o.into(), p))
}

fn arb_payload() -> impl Strategy<Value = Bytes> {
    proptest::collection::vec(any::<u8>(), 0..512).prop_map(Bytes::from)
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u64>(), arb_endpoint()).prop_map(|(id, private)| Message::Register {
            peer_id: PeerId(id),
            private
        }),
        arb_endpoint().prop_map(|public| Message::RegisterAck { public }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(a, b, n)| Message::ConnectRequest {
            peer_id: PeerId(a),
            target: PeerId(b),
            nonce: n,
        }),
        (
            any::<u64>(),
            arb_endpoint(),
            arb_endpoint(),
            any::<u64>(),
            any::<bool>()
        )
            .prop_map(|(p, pb, pv, n, i)| Message::Introduce {
                peer: PeerId(p),
                public: pb,
                private: pv,
                nonce: n,
                initiator: i,
            }),
        (any::<u64>(), any::<u64>(), arb_payload()).prop_map(|(f, t, d)| Message::RelayData {
            from: PeerId(f),
            target: PeerId(t),
            data: d,
        }),
        (any::<u64>(), arb_payload()).prop_map(|(f, d)| Message::RelayedData {
            from: PeerId(f),
            data: d
        }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(a, b, n)| Message::ReversalRequest {
            peer_id: PeerId(a),
            target: PeerId(b),
            nonce: n,
        }),
        (any::<u64>(), arb_endpoint(), arb_endpoint(), any::<u64>()).prop_map(|(f, pb, pv, n)| {
            Message::ReversalRequested {
                from: PeerId(f),
                public: pb,
                private: pv,
                nonce: n,
            }
        }),
        Just(Message::Ping),
        Just(Message::Pong),
        (any::<u64>(), any::<u64>()).prop_map(|(f, n)| Message::PeerHello {
            from: PeerId(f),
            nonce: n
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(f, n)| Message::PeerHelloAck {
            from: PeerId(f),
            nonce: n
        }),
        arb_payload().prop_map(|d| Message::PeerData { data: d }),
        Just(Message::KeepAlive),
        any::<u8>().prop_map(|c| Message::ErrorReply { code: c }),
    ]
}

proptest! {
    #[test]
    fn roundtrip_any_message(msg in arb_message(), obf in any::<bool>()) {
        let enc = msg.encode(obf);
        let dec = Message::decode(&enc).expect("own encoding must decode");
        prop_assert_eq!(dec, msg);
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(&bytes);
    }

    #[test]
    fn frame_reassembly_is_chunking_invariant(
        msgs in proptest::collection::vec(arb_message(), 1..8),
        chunk in 1usize..32,
        obf in any::<bool>(),
    ) {
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&encode_frame(m, obf));
        }
        let mut fb = FrameBuf::new();
        let mut out = Vec::new();
        for c in stream.chunks(chunk) {
            fb.push(c);
            while let Some(m) = fb.next_message() {
                out.push(m.expect("valid frame"));
            }
        }
        prop_assert_eq!(out, msgs);
    }

    #[test]
    fn framebuf_survives_garbage_prefixes(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        // Arbitrary bytes may produce errors but never panic or loop.
        let mut fb = FrameBuf::new();
        fb.push(&bytes);
        for _ in 0..64 {
            if fb.next_message().is_none() {
                break;
            }
        }
    }

    /// Strict framing: any valid message with bytes appended is
    /// rejected with `TrailingBytes`, never silently trimmed.
    #[test]
    fn trailing_bytes_are_rejected(
        msg in arb_message(),
        obf in any::<bool>(),
        pad in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let mut enc = msg.encode(obf).to_vec();
        enc.extend_from_slice(&pad);
        prop_assert_eq!(
            Message::decode(&enc),
            Err(WireError::TrailingBytes(pad.len()))
        );
    }

    /// Outrunning the reassembly cap poisons the buffer: it reports
    /// `Oversize` persistently and never yields messages pushed after
    /// the overflow, rather than buffering without bound.
    #[test]
    fn overflow_poisons_the_reassembler(
        extra in 1usize..64,
        obf in any::<bool>(),
    ) {
        let mut fb = FrameBuf::new();
        fb.push(&vec![0u8; MAX_BUFFER + extra]);
        prop_assert!(matches!(fb.next_message(), Some(Err(WireError::Oversize(_)))));
        fb.push(&encode_frame(&Message::Ping, obf));
        prop_assert!(matches!(fb.next_message(), Some(Err(WireError::Oversize(_)))));
    }

    #[test]
    fn obfuscation_never_changes_decoded_value(ep in arb_endpoint(), id in any::<u64>()) {
        let msg = Message::Register { peer_id: PeerId(id), private: ep };
        let plain = Message::decode(&msg.encode(false)).expect("decodes");
        let obf = Message::decode(&msg.encode(true)).expect("decodes");
        prop_assert_eq!(plain, obf);
    }
}
