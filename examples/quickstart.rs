//! Quickstart: UDP hole punching across two NATs (the paper's Figure 5).
//!
//! Two clients on different private networks, each behind its own
//! well-behaved NAT, establish a direct UDP session with the help of the
//! rendezvous server S and exchange datagrams — no relaying involved.
//!
//! Run with: `cargo run --example quickstart`

use bytes::Bytes;
use p2p_punch::prelude::*;

fn main() {
    let a_id = PeerId(1);
    let b_id = PeerId(2);
    let server = Scenario::server_endpoint();

    println!("== Topology (paper Figure 5) ==");
    println!("  server S       {server}");
    println!("  NAT A          {} (well-behaved cone NAT)", addrs::NAT_A);
    println!("  NAT B          {} (well-behaved cone NAT)", addrs::NAT_B);
    println!("  client A       {} (private)", addrs::CLIENT_A);
    println!("  client B       {} (private)", addrs::CLIENT_B);
    println!();

    let mut sc = fig5(
        42,
        NatBehavior::well_behaved(),
        NatBehavior::well_behaved(),
        PeerSetup::new(UdpPeer::new(UdpPeerConfig::new(a_id, server))),
        PeerSetup::new(UdpPeer::new(UdpPeerConfig::new(b_id, server))),
    );

    // Let both clients register with S.
    sc.world.sim.run_for(Duration::from_secs(2));
    let pub_a = sc
        .world
        .app::<UdpPeer>(sc.a)
        .public_endpoint()
        .expect("A registered");
    let pub_b = sc
        .world
        .app::<UdpPeer>(sc.b)
        .public_endpoint()
        .expect("B registered");
    println!("A registered; S observes it at {pub_a}");
    println!("B registered; S observes it at {pub_b}");

    // A asks S to introduce it to B, then both sides punch (§3.2).
    let punch_started = sc.world.sim.now();
    sc.world
        .with_app::<UdpPeer, _>(sc.a, |p, os| p.connect(os, b_id));
    let ok = sc
        .world
        .run_until_app::<UdpPeer>(sc.a, SimTime::from_secs(30), |p| p.is_established(b_id));
    assert!(ok, "punch failed");
    let elapsed = sc.world.sim.now() - punch_started;
    let remote = sc
        .world
        .app::<UdpPeer>(sc.a)
        .session_remote(b_id)
        .expect("established");
    println!();
    println!(
        "hole punched in {:.1} ms (simulated)",
        elapsed.as_secs_f64() * 1e3
    );
    println!("A locked in B's endpoint: {remote} (B's public NAT mapping)");

    // Exchange application data directly.
    sc.world.with_app::<UdpPeer, _>(sc.a, |p, os| {
        p.send(os, b_id, Bytes::from_static(b"hello from A"))
    });
    sc.world.with_app::<UdpPeer, _>(sc.b, |p, os| {
        p.send(os, a_id, Bytes::from_static(b"hello from B"))
    });
    sc.world.sim.run_for(Duration::from_secs(1));

    for (node, name) in [(sc.a, "A"), (sc.b, "B")] {
        let events = sc
            .world
            .with_app::<UdpPeer, _>(node, |p, _| p.take_events());
        for ev in events {
            if let UdpPeerEvent::Data { peer, data, via } = ev {
                println!(
                    "{name} received {:?} from {peer} via {via:?}",
                    String::from_utf8_lossy(&data)
                );
            }
        }
    }

    let stats = sc.world.app::<UdpPeer>(sc.a).stats();
    println!();
    println!(
        "A's endpoint stats: {} punch probes, {} direct messages, {} relayed",
        stats.probes_sent, stats.direct_msgs, stats.relay_msgs
    );
}
