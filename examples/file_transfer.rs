//! File transfer over a hole-punched TCP stream (§4).
//!
//! Client A punches a TCP connection to client B through two NATs — one
//! of which actively RSTs unsolicited SYNs (§5.2), forcing the step-4
//! retry — then streams a 256 KiB "file" over the authenticated stream
//! and reports throughput and which socket-API path each side saw (§4.3).
//!
//! Run with: `cargo run --example file_transfer`

use bytes::Bytes;
use p2p_punch::prelude::*;

const FILE_SIZE: usize = 256 * 1024;
const CHUNK: usize = 8 * 1024;

fn main() {
    let a_id = PeerId(1);
    let b_id = PeerId(2);
    let server = Scenario::server_endpoint();

    // B's NAT rejects unsolicited SYNs with RST — not fatal, just slower.
    let rst_nat = NatBehavior::well_behaved().with_tcp_unsolicited(TcpUnsolicited::Rst);
    println!("NAT A: well-behaved (drops unsolicited SYNs)");
    println!("NAT B: RSTs unsolicited SYNs (§5.2) — expect a retry");
    println!();

    // B sits behind a slow access link, so A's first SYN reaches B's NAT
    // before B's own SYN has opened the hole — and meets the RST.
    let mut wb = WorldBuilder::new(7);
    wb.server(
        addrs::SERVER,
        RendezvousServer::new(ServerConfig::default()),
    );
    let na = wb.nat(NatBehavior::well_behaved(), addrs::NAT_A);
    let nb = wb.nat(rst_nat, addrs::NAT_B);
    wb.client(
        addrs::CLIENT_A,
        na,
        PeerSetup::new(TcpPeer::new(TcpPeerConfig::new(a_id, server)))
            .with_stack(StackConfig::fast().with_flavor(TcpFlavor::LinuxWindows)),
    );
    wb.client_linked(
        addrs::CLIENT_B,
        nb,
        PeerSetup::new(TcpPeer::new(TcpPeerConfig::new(b_id, server)))
            .with_stack(StackConfig::fast().with_flavor(TcpFlavor::Bsd)),
        LinkSpec::new(Duration::from_millis(120)),
    );
    let world = wb.build();
    let mut sc = Scenario {
        server: world.servers[0],
        a: world.clients[0],
        b: world.clients[1],
        world,
    };

    sc.world.sim.run_for(Duration::from_secs(2));
    let started = sc.world.sim.now();
    sc.world
        .with_app::<TcpPeer, _>(sc.a, |p, os| p.connect(os, b_id));
    let ok = sc
        .world
        .run_until_app::<TcpPeer>(sc.a, SimTime::from_secs(40), |p| p.is_established(b_id));
    assert!(ok, "TCP punch failed");
    sc.world
        .run_until_app::<TcpPeer>(sc.b, SimTime::from_secs(40), |p| p.is_established(a_id));
    let punch_ms = (sc.world.sim.now() - started).as_secs_f64() * 1e3;

    let path_a = sc
        .world
        .app::<TcpPeer>(sc.a)
        .established_path(b_id)
        .expect("established");
    let path_b = sc
        .world
        .app::<TcpPeer>(sc.b)
        .established_path(a_id)
        .expect("established");
    let retries = sc.world.app::<TcpPeer>(sc.a).stats().retries;
    println!("TCP stream punched in {punch_ms:.1} ms (simulated), {retries} retried connect(s)");
    println!("A's stream surfaced via {path_a:?} (Linux/Windows-flavour stack)");
    println!("B's stream surfaced via {path_b:?} (BSD-flavour stack)");
    println!();

    // Stream the file A → B in chunks.
    let transfer_started = sc.world.sim.now();
    let payload = vec![0xabu8; CHUNK];
    let chunks = FILE_SIZE / CHUNK;
    for _ in 0..chunks {
        sc.world
            .with_app::<TcpPeer, _>(sc.a, |p, os| p.send(os, b_id, Bytes::from(payload.clone())));
    }
    // Run until B has received everything.
    let mut received = 0usize;
    let deadline = sc.world.sim.now() + Duration::from_secs(120);
    while received < FILE_SIZE && sc.world.sim.now() < deadline {
        sc.world.sim.run_for(Duration::from_millis(100));
        let events = sc
            .world
            .with_app::<TcpPeer, _>(sc.b, |p, _| p.take_events());
        for ev in events {
            if let TcpPeerEvent::Data { data, .. } = ev {
                received += data.len();
            }
        }
    }
    let secs = (sc.world.sim.now() - transfer_started).as_secs_f64();
    assert_eq!(received, FILE_SIZE, "incomplete transfer");
    println!(
        "transferred {} KiB in {:.2} s (simulated) = {:.1} KiB/s through both NATs",
        received / 1024,
        secs,
        received as f64 / 1024.0 / secs
    );
}
