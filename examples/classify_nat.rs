//! Classify a NAT's mapping behaviour from behind it (the §5.1 probing
//! prerequisite for port prediction), STUN-style, against two rendezvous
//! servers.
//!
//! Run with: `cargo run --example classify_nat`

use p2p_punch::lab::{PeerSetup, WorldBuilder};
use p2p_punch::prelude::*;
use p2p_punch::punch::{Classifier, MappingVerdict};
use std::net::Ipv4Addr;

const S1: Ipv4Addr = Ipv4Addr::new(18, 181, 0, 31);
const S2: Ipv4Addr = Ipv4Addr::new(64, 15, 12, 2);

fn classify(label: &str, nat: Option<NatBehavior>) {
    let servers: Vec<Endpoint> = vec![Endpoint::new(S1, 1234), Endpoint::new(S2, 1234)];
    let mut wb = WorldBuilder::new(9);
    wb.server(S1, RendezvousServer::new(ServerConfig::default()));
    wb.server(S2, RendezvousServer::new(ServerConfig::default()));
    let idx = match nat {
        Some(behavior) => {
            let n = wb.nat(behavior, "155.99.25.11".parse().unwrap());
            wb.client(
                "10.0.0.1".parse().unwrap(),
                n,
                PeerSetup::new(Classifier::new(servers)),
            )
        }
        None => wb.public_client(
            "99.1.1.1".parse().unwrap(),
            PeerSetup::new(Classifier::new(servers)),
        ),
    };
    let mut world = wb.build();
    let node = world.clients[idx];
    world.run_until_app::<Classifier>(node, SimTime::from_secs(30), |c| c.report().is_some());
    let report = world
        .app::<Classifier>(node)
        .report()
        .expect("finished")
        .clone();
    let verdict = match report.mapping {
        MappingVerdict::NoNat => "no NAT (publicly reachable)".to_string(),
        MappingVerdict::EndpointIndependent => "cone NAT — hole punching will work (§5.1)".into(),
        MappingVerdict::AddressDependent => "address-dependent mapping".into(),
        MappingVerdict::AddressAndPortDependent => match report.delta {
            Some(d) => format!("symmetric NAT, port delta {d:+} — predictable, prediction viable"),
            None => "symmetric NAT, no stable delta — prediction hopeless".into(),
        },
        MappingVerdict::Unknown => "unknown (probes lost)".into(),
    };
    println!("{label:<42} -> {verdict}");
    for (via, seen) in &report.observations {
        println!("    probe via {via:<18} observed {seen}");
    }
}

fn main() {
    println!("STUN-style classification against two servers (2 ports each):\n");
    classify("no NAT", None);
    classify("well-behaved cone NAT", Some(NatBehavior::well_behaved()));
    classify(
        "symmetric NAT, sequential ports",
        Some(NatBehavior::symmetric().with_port_alloc(PortAllocation::Sequential)),
    );
    classify(
        "symmetric NAT, random ports",
        Some(NatBehavior::symmetric().with_port_alloc(PortAllocation::Random)),
    );
}
