//! A "voice call" over a punched UDP session, surviving an aggressive
//! NAT idle timer (§3.6).
//!
//! Both NATs expire idle UDP mappings after 20 seconds — the paper's
//! worst observed case. The call sends a 50 ms frame cadence for ten
//! seconds, goes silent for half a minute (keepalives hold the mapping),
//! resumes, then the clients stop keepalives entirely and demonstrate
//! on-demand re-punching when the next frame is sent.
//!
//! Run with: `cargo run --example voice_call`

use bytes::Bytes;
use p2p_punch::prelude::*;

fn main() {
    let a_id = PeerId(1);
    let b_id = PeerId(2);
    let server = Scenario::server_endpoint();
    let nat = NatBehavior::well_behaved().with_udp_timeout(Duration::from_secs(20));

    let cfg = |id| {
        let mut c = UdpPeerConfig::new(id, server);
        c.punch.keepalive_interval = Duration::from_secs(15); // < NAT timer
        c.punch.session_timeout = Duration::from_secs(45);
        c
    };
    let mut sc = fig5(
        11,
        nat.clone(),
        nat,
        PeerSetup::new(UdpPeer::new(cfg(a_id))),
        PeerSetup::new(UdpPeer::new(cfg(b_id))),
    );

    sc.world.sim.run_for(Duration::from_secs(2));
    sc.world
        .with_app::<UdpPeer, _>(sc.a, |p, os| p.connect(os, b_id));
    assert!(sc
        .world
        .run_until_app::<UdpPeer>(sc.a, SimTime::from_secs(30), |p| p.is_established(b_id)));
    println!("call connected (direct, hole-punched)");

    // Ten seconds of 50 ms voice frames.
    let mut frames_b = 0usize;
    for i in 0..200u32 {
        sc.world.with_app::<UdpPeer, _>(sc.a, |p, os| {
            p.send(os, b_id, Bytes::from(i.to_be_bytes().to_vec()))
        });
        sc.world.sim.run_for(Duration::from_millis(50));
        let events = sc
            .world
            .with_app::<UdpPeer, _>(sc.b, |p, _| p.take_events());
        frames_b += events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    UdpPeerEvent::Data {
                        via: Via::Direct,
                        ..
                    }
                )
            })
            .count();
    }
    println!("talk phase: B played {frames_b}/200 frames, all direct");

    // Thirty silent seconds: the NAT timer is 20 s, but 15 s keepalives
    // hold the hole open.
    sc.world.sim.run_for(Duration::from_secs(30));
    sc.world.with_app::<UdpPeer, _>(sc.a, |p, os| {
        p.send(os, b_id, Bytes::from_static(b"still there?"))
    });
    sc.world.sim.run_for(Duration::from_secs(1));
    let events = sc
        .world
        .with_app::<UdpPeer, _>(sc.b, |p, _| p.take_events());
    let direct = events.iter().any(|e| {
        matches!(
            e,
            UdpPeerEvent::Data {
                via: Via::Direct,
                ..
            }
        )
    });
    println!(
        "after 30 s of silence: frame delivered directly = {direct} (keepalives held the mapping)"
    );
    assert!(direct);
    assert_eq!(sc.world.app::<UdpPeer>(sc.a).stats().repunches, 0);

    // Simulate a long suspend: sessions with slow keepalives die, and the
    // next send re-punches on demand (§3.6's recommended strategy).
    println!();
    println!("reconfiguring: keepalives effectively off; sleeping 120 s...");
    let mut sc2 = {
        let cfg2 = |id| {
            let mut c = UdpPeerConfig::new(id, server);
            c.punch.keepalive_interval = Duration::from_secs(600);
            c.punch.session_timeout = Duration::from_secs(60);
            c
        };
        let nat = NatBehavior::well_behaved().with_udp_timeout(Duration::from_secs(20));
        fig5(
            12,
            nat.clone(),
            nat,
            PeerSetup::new(UdpPeer::new(cfg2(a_id))),
            PeerSetup::new(UdpPeer::new(cfg2(b_id))),
        )
    };
    sc2.world.sim.run_for(Duration::from_secs(2));
    sc2.world
        .with_app::<UdpPeer, _>(sc2.a, |p, os| p.connect(os, b_id));
    sc2.world
        .run_until_app::<UdpPeer>(sc2.a, SimTime::from_secs(30), |p| p.is_established(b_id));
    sc2.world.sim.run_for(Duration::from_secs(120)); // both holes close

    sc2.world.with_app::<UdpPeer, _>(sc2.a, |p, os| {
        p.send(os, b_id, Bytes::from_static(b"wake up"))
    });
    let deadline = sc2.world.sim.now() + Duration::from_secs(30);
    let ok = sc2
        .world
        .run_until_app::<UdpPeer>(sc2.a, deadline, |p| p.is_established(b_id));
    assert!(ok);
    sc2.world.sim.run_for(Duration::from_secs(2));
    let events = sc2
        .world
        .with_app::<UdpPeer, _>(sc2.b, |p, _| p.take_events());
    let woke = events
        .iter()
        .any(|e| matches!(e, UdpPeerEvent::Data { data, .. } if data.as_ref() == b"wake up"));
    let repunches = sc2.world.app::<UdpPeer>(sc2.a).stats().repunches;
    println!(
        "session died and re-punched on demand: {repunches} re-punch, frame delivered = {woke}"
    );
    assert!(woke && repunches >= 1);
}
