//! Regenerate the paper's Table 1 by running NAT Check against the full
//! sampled vendor populations (380 simulated devices).
//!
//! Run with: `cargo run --release --example nat_survey`
//! (a `--quick` argument caps each vendor at 5 devices).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cap = if quick { Some(5) } else { None };
    let label = if quick {
        "quick (≤5 devices/vendor)"
    } else {
        "full (380 devices)"
    };
    println!("NAT Check survey, {label}:\n");
    let result = p2p_punch::natcheck::run_survey(2005, cap);
    println!("{}", result.format());
    println!(
        "Paper's All-Vendors row:  310/380 (82%)   80/335 (24%)  184/286 (64%)   37/286 (13%)"
    );
    println!("(The paper's printed TCP-hairpin column is internally inconsistent —");
    println!(" its per-vendor rows sum to 40/284; see EXPERIMENTS.md.)");
}
