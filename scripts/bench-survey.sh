#!/usr/bin/env sh
# Quick survey benchmark + determinism check.
#
# Runs the capped Table 1 survey twice — once forced sequential
# (PUNCH_JOBS=1), once on the default worker pool — and diffs the two
# outputs. Exits non-zero if they differ, i.e. if parallel execution
# ever changes a result. The full-survey timing artifact
# (results/BENCH_survey.json) is produced by the table1 bin itself;
# this script is the cheap regression guard.
#
# Usage: scripts/bench-survey.sh  (from the repo root)
set -eu

cd "$(dirname "$0")/.."

out_seq=$(mktemp)
out_par=$(mktemp)
trap 'rm -f "$out_seq" "$out_par"' EXIT

echo "== capped survey, sequential (PUNCH_JOBS=1) =="
PUNCH_JOBS=1 cargo run --release --quiet --example nat_survey -- --quick > "$out_seq"
echo "== capped survey, worker pool (default PUNCH_JOBS) =="
cargo run --release --quiet --example nat_survey -- --quick > "$out_par"

if diff -u "$out_seq" "$out_par"; then
    echo "OK: survey output is byte-identical sequential vs parallel"
else
    echo "FAIL: survey output differs between sequential and parallel runs" >&2
    exit 1
fi
