#!/usr/bin/env sh
# Full local CI: build, test, lint, and a chaos smoke test.
#
#   scripts/ci.sh            (from the repo root)
#
# Steps:
#   1. cargo build --release              — everything compiles optimized
#   2. cargo test -q                      — tier-1: the root package's suites
#                                           (paper_claims, resilience, chaos)
#   3. cargo test --workspace -q          — every crate's suites
#   4. cargo clippy ... -- -D warnings    — lint our crates only; vendor/*
#                                           are workspace members (vendored
#                                           rand/bytes/proptest/criterion),
#                                           so they must be excluded rather
#                                           than linted to their authors'
#                                           standards
#   5. cargo doc (-D warnings)            — rustdoc on our crates must be
#                                           warning-free (vendor/* excluded,
#                                           as in clippy)
#   6. punch-lint                         — the workspace's own determinism
#                                           & wire-safety analyzer (LINTS.md)
#                                           must report zero violations, its
#                                           text/JSON reports and emitted
#                                           registries must be byte-identical
#                                           across runs, the emitted
#                                           registries must match the pinned
#                                           results/LINT_*.json (no
#                                           unexplained drift), and a seeded
#                                           violation per rule family
#                                           (P001 + S001–S004) must make it
#                                           fail
#   7. chaos smoke test                   — 2 trials per fault class, must
#                                           report zero failures
#   8. metrics determinism smoke          — the chaos bin's metrics export
#                                           is byte-identical for the same
#                                           seeds at 1 vs 2 workers
#   9. million-scale shard smoke          — a capped ShardedWorld run's
#                                           per-session outcome report is
#                                           byte-identical at 1 vs 2
#                                           workers, every session
#                                           resolves, and events/sec gets
#                                           a soft (warn-only) floor
#  10. rendezvous-fleet smoke             — an n=4 mini flash crowd with a
#                                           mid-crowd server restart: the
#                                           fleet JSON is byte-identical
#                                           at 1 vs 2 workers, zero
#                                           pending, zero forward errors
set -eu

cd "$(dirname "$0")/.."

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

echo "== build (release) =="
cargo build --release --quiet

echo "== test (tier-1: root package) =="
cargo test -q

echo "== test (workspace) =="
cargo test --workspace -q

echo "== clippy (-D warnings, vendor/* excluded) =="
cargo clippy --workspace \
    --exclude rand --exclude bytes --exclude proptest --exclude criterion \
    --all-targets -- -D warnings

echo "== rustdoc (-D warnings, vendor/* excluded) =="
RUSTDOCFLAGS="-D warnings" cargo doc --quiet --no-deps --workspace \
    --exclude rand --exclude bytes --exclude proptest --exclude criterion

echo "== punch-lint (determinism & wire-safety, LINTS.md) =="
cargo run --release --quiet -p punch-lint | tee "$tmpdir/lint1.txt"
cargo run --release --quiet -p punch-lint > "$tmpdir/lint2.txt"
if ! cmp -s "$tmpdir/lint1.txt" "$tmpdir/lint2.txt"; then
    echo "FAIL: punch-lint report is not byte-identical across runs" >&2
    diff "$tmpdir/lint1.txt" "$tmpdir/lint2.txt" >&2 || true
    exit 1
fi
cargo run --release --quiet -p punch-lint -- --json > "$tmpdir/lint.json"
cargo run --release --quiet -p punch-lint -- --json > "$tmpdir/lint2.json"
if ! cmp -s "$tmpdir/lint.json" "$tmpdir/lint2.json"; then
    echo "FAIL: punch-lint --json report is not byte-identical across runs" >&2
    diff "$tmpdir/lint.json" "$tmpdir/lint2.json" >&2 || true
    exit 1
fi
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$tmpdir/lint.json"
echo "OK: tree is clean, text/JSON reports deterministic, --json well-formed"

echo "== punch-lint registry drift gate (results/LINT_*.json) =="
cargo run --release --quiet -p punch-lint -- --emit-registries "$tmpdir/registries" \
    > /dev/null
for reg in LINT_wire_registry.json LINT_rng_inventory.json LINT_metric_registry.json; do
    if ! cmp -s "results/$reg" "$tmpdir/registries/$reg"; then
        echo "FAIL: results/$reg drifted from the tree; re-emit with" >&2
        echo "      cargo run -p punch-lint -- --emit-registries results" >&2
        echo "      and review the diff (reasons survive re-emission)" >&2
        diff "results/$reg" "$tmpdir/registries/$reg" >&2 || true
        exit 1
    fi
done
echo "OK: pinned registries match the tree byte-for-byte"

echo "== punch-lint seeded-violation smoke (the gate actually gates) =="
mkdir -p "$tmpdir/seeded/src"
cp crates/lint/tests/fixtures/p001_panic.rs "$tmpdir/seeded/src/lib.rs"
if cargo run --release --quiet -p punch-lint -- --root "$tmpdir/seeded" \
    > "$tmpdir/seeded.txt" 2>&1; then
    echo "FAIL: punch-lint exited 0 on a tree with seeded violations" >&2
    cat "$tmpdir/seeded.txt" >&2
    exit 1
fi
if ! grep -q "P001" "$tmpdir/seeded.txt"; then
    echo "FAIL: seeded P001 violation not reported" >&2
    cat "$tmpdir/seeded.txt" >&2
    exit 1
fi
for srule in S001 S002 S003 S004; do
    tree="crates/lint/tests/fixtures/semantic/$(echo "$srule" | tr 'A-Z' 'a-z')_bad"
    if cargo run --release --quiet -p punch-lint -- --root "$tree" \
        > "$tmpdir/seeded_$srule.txt" 2>&1; then
        echo "FAIL: punch-lint exited 0 on the $srule violating fixture tree" >&2
        cat "$tmpdir/seeded_$srule.txt" >&2
        exit 1
    fi
    if ! grep -q "$srule" "$tmpdir/seeded_$srule.txt"; then
        echo "FAIL: seeded $srule violation not reported" >&2
        cat "$tmpdir/seeded_$srule.txt" >&2
        exit 1
    fi
done
echo "OK: seeded violations (P001 + S001-S004) detected, exit status nonzero"

echo "== chaos smoke test (2 trials per fault class) =="
out=$(cargo run --release --quiet -p punch-bench --bin chaos -- --trials 2 --no-write)
echo "$out"
if echo "$out" | grep -q "[1-9][0-9]*/2\b"; then
    echo "FAIL: chaos smoke test reported recovery failures" >&2
    exit 1
fi
echo "OK: all chaos smoke trials recovered"

echo "== metrics determinism smoke (1 vs 2 workers) =="
PUNCH_JOBS=1 cargo run --release --quiet -p punch-bench --bin chaos -- \
    --trials 2 --no-write --metrics-out "$tmpdir/m1.json" > /dev/null
PUNCH_JOBS=2 cargo run --release --quiet -p punch-bench --bin chaos -- \
    --trials 2 --no-write --metrics-out "$tmpdir/m2.json" > /dev/null
if ! cmp -s "$tmpdir/m1.json" "$tmpdir/m2.json"; then
    echo "FAIL: metrics export differs between 1 and 2 workers" >&2
    diff "$tmpdir/m1.json" "$tmpdir/m2.json" >&2 || true
    exit 1
fi
echo "OK: metrics export byte-identical across worker counts"

echo "== million-scale shard smoke (sharded-world determinism, 1 vs 2 workers) =="
PUNCH_JOBS=1 cargo run --release --quiet -p punch-bench --bin million -- \
    --sessions 400 --shards 4 --out "$tmpdir/million.json" \
    --report-out "$tmpdir/shard1.txt" > /dev/null
PUNCH_JOBS=2 cargo run --release --quiet -p punch-bench --bin million -- \
    --sessions 400 --shards 4 --no-write \
    --report-out "$tmpdir/shard2.txt" > /dev/null
if ! cmp -s "$tmpdir/shard1.txt" "$tmpdir/shard2.txt"; then
    echo "FAIL: sharded-world per-session outcomes differ between 1 and 2 workers" >&2
    diff "$tmpdir/shard1.txt" "$tmpdir/shard2.txt" >&2 || true
    exit 1
fi
python3 - "$tmpdir/million.json" <<'PYEOF'
import json, sys
j = json.load(open(sys.argv[1]))
if j["pending"] or j["failed"]:
    sys.exit(f"FAIL: shard smoke left sessions unresolved: {j['failed']} failed, {j['pending']} pending")
# Soft floor only: the tracked metric lives in results/BENCH_million.json;
# this guards against order-of-magnitude regressions without flaking on
# noisy or slow CI hosts.
rate = j["events_per_sec_per_core"]
if rate < 100_000:
    print(f"WARN: events/sec/core {rate} below the 100k soft floor", file=sys.stderr)
PYEOF
echo "OK: shard outcomes byte-identical across worker counts, all sessions resolved"

echo "== rendezvous-fleet smoke (n=4 mini flash crowd, 1 vs 2 workers) =="
PUNCH_JOBS=1 cargo run --release --quiet -p punch-bench --bin fleet -- \
    --sessions 200 --shards 4 --fleets 4 --out "$tmpdir/fleet1.json" > /dev/null
PUNCH_JOBS=2 cargo run --release --quiet -p punch-bench --bin fleet -- \
    --sessions 200 --shards 4 --fleets 4 --out "$tmpdir/fleet2.json" > /dev/null
if ! cmp -s "$tmpdir/fleet1.json" "$tmpdir/fleet2.json"; then
    echo "FAIL: fleet report differs between 1 and 2 workers" >&2
    diff "$tmpdir/fleet1.json" "$tmpdir/fleet2.json" >&2 || true
    exit 1
fi
python3 - "$tmpdir/fleet1.json" <<'PYEOF'
import json, sys
j = json.load(open(sys.argv[1]))
for leg in j["fleets"]:
    if leg["pending"]:
        sys.exit(f"FAIL: fleet smoke left {leg['pending']} sessions pending at n={leg['servers']}")
    if leg["forward_errors"]:
        sys.exit(f"FAIL: fleet smoke hit {leg['forward_errors']} forward errors at n={leg['servers']}")
PYEOF
echo "OK: fleet report byte-identical across worker counts, zero pending"

echo "== decoder fuzz suites (wire codecs + TCP segment storms) =="
cargo test -q -p punch-rendezvous --test proptest_wire
cargo test -q -p punch-natcheck --test proptest_check_wire
cargo test -q -p punch-transport --test proptest_tcp

echo "== chaos search smoke (sampled schedules, zero violations) =="
out=$(cargo run --release --quiet -p punch-bench --bin chaos_search -- \
    --schedules 20 --no-write)
echo "$out"
if ! echo "$out" | grep -q "violations: 0"; then
    echo "FAIL: chaos search found invariant violations" >&2
    exit 1
fi
echo "OK: no invariant violations in sampled schedules"

echo "== pinned chaos results (fault knobs cost nothing when disabled) =="
cargo run --release --quiet -p punch-bench --bin chaos -- --no-write \
    > "$tmpdir/chaos_pinned.txt"
if ! cmp -s results/chaos.txt "$tmpdir/chaos_pinned.txt"; then
    echo "FAIL: results/chaos.txt drifted from a fresh default run" >&2
    diff results/chaos.txt "$tmpdir/chaos_pinned.txt" >&2 || true
    exit 1
fi
echo "OK: results/chaos.txt reproduced byte-identically"

echo "== strategy-matrix smoke (racing engine, 1 vs 2 workers) =="
PUNCH_JOBS=1 cargo run --release --quiet -p punch-bench --bin strategies -- \
    --trials 4 --out "$tmpdir/strat1.json" > /dev/null
PUNCH_JOBS=2 cargo run --release --quiet -p punch-bench --bin strategies -- \
    --trials 4 --out "$tmpdir/strat2.json" > /dev/null
if ! cmp -s "$tmpdir/strat1.json" "$tmpdir/strat2.json"; then
    echo "FAIL: strategy matrix differs between 1 and 2 workers" >&2
    diff "$tmpdir/strat1.json" "$tmpdir/strat2.json" >&2 || true
    exit 1
fi
python3 - "$tmpdir/strat1.json" <<'PYEOF'
import json, sys
j = json.load(open(sys.argv[1]))
cell = "sym_seqxsym_seq"
basic = j["matrix"]["basic"][cell]["direct"]
predict = j["matrix"]["predict_seq"][cell]["direct"]
if predict <= basic:
    sys.exit(
        f"FAIL: sequential-delta prediction must beat Basic on the "
        f"symmetric(sequential) x symmetric(sequential) cell: "
        f"predict_seq={predict} vs basic={basic}"
    )
PYEOF
echo "OK: strategy matrix byte-identical across worker counts, prediction beats Basic on symmetric x symmetric"

echo "== attack-suite smoke (adversary legs, defense flips, 1 vs 2 workers) =="
PUNCH_JOBS=1 cargo run --release --quiet -p punch-bench --bin attacks -- \
    --trials 2 --out "$tmpdir/atk1.json" > /dev/null
PUNCH_JOBS=2 cargo run --release --quiet -p punch-bench --bin attacks -- \
    --trials 2 --out "$tmpdir/atk2.json" > /dev/null
if ! cmp -s "$tmpdir/atk1.json" "$tmpdir/atk2.json"; then
    echo "FAIL: attack suite differs between 1 and 2 workers" >&2
    diff "$tmpdir/atk1.json" "$tmpdir/atk2.json" >&2 || true
    exit 1
fi
python3 - "$tmpdir/atk1.json" <<'PYEOF'
import json, sys
j = json.load(open(sys.argv[1]))
trials = j["trials"]
for leg, arms in j["attacks"].items():
    off, on = arms["off"], arms["on"]
    if not off["disrupted"]:
        sys.exit(f"FAIL: {leg} with defenses off never disrupted the victim")
    if off["defense_events"]:
        sys.exit(f"FAIL: {leg} counted defense events with defenses off")
    if on["disrupted"]:
        sys.exit(f"FAIL: {leg} disrupted the victim despite its defense")
    if on["recovered"] != trials:
        sys.exit(f"FAIL: {leg} victim not healthy in every defended trial")
    if not on["defense_events"]:
        sys.exit(f"FAIL: {leg} defense never fired")
PYEOF
echo "OK: every attack bites undefended, every defense rides through, byte-identical across worker counts"

echo "== adversarial chaos search smoke (attack schedules, zero violations) =="
out=$(cargo run --release --quiet -p punch-bench --bin chaos_search -- \
    --profile adversarial --schedules 20 --no-write)
echo "$out"
if ! echo "$out" | grep -q "violations: 0"; then
    echo "FAIL: adversarial chaos search found invariant violations" >&2
    exit 1
fi
echo "OK: no invariant violations under sampled attack schedules"
