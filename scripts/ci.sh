#!/usr/bin/env sh
# Full local CI: build, test, lint, and a chaos smoke test.
#
#   scripts/ci.sh            (from the repo root)
#
# Steps:
#   1. cargo build --release              — everything compiles optimized
#   2. cargo test -q                      — tier-1: the root package's suites
#                                           (paper_claims, resilience, chaos)
#   3. cargo test --workspace -q          — every crate's suites
#   4. cargo clippy ... -- -D warnings    — lint our crates only; vendor/*
#                                           are workspace members (vendored
#                                           rand/bytes/proptest/criterion),
#                                           so they must be excluded rather
#                                           than linted to their authors'
#                                           standards
#   5. chaos smoke test                   — 2 trials per fault class, must
#                                           report zero failures
set -eu

cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --quiet

echo "== test (tier-1: root package) =="
cargo test -q

echo "== test (workspace) =="
cargo test --workspace -q

echo "== clippy (-D warnings, vendor/* excluded) =="
cargo clippy --workspace \
    --exclude rand --exclude bytes --exclude proptest --exclude criterion \
    --all-targets -- -D warnings

echo "== chaos smoke test (2 trials per fault class) =="
out=$(cargo run --release --quiet -p punch-bench --bin chaos -- --trials 2 --no-write)
echo "$out"
if echo "$out" | grep -q "[1-9][0-9]*/2\b"; then
    echo "FAIL: chaos smoke test reported recovery failures" >&2
    exit 1
fi
echo "OK: all chaos smoke trials recovered"
