//! Chaos tests: scripted faults (NAT reboots, rendezvous restarts, link
//! outages, behaviour flips) against the recovery machinery — liveness
//! detection, automatic re-punching, re-registration, and relay-to-direct
//! upgrades. Every scenario is deterministic under its seed.

use bytes::Bytes;
use p2p_punch::prelude::*;

const A: PeerId = PeerId(1);
const B: PeerId = PeerId(2);

/// A chaos-hardened peer config: fast liveness detection (1 s keepalives,
/// 3-miss limit), automatic re-punch with jittered backoff, a 2 s server
/// keepalive so registration loss is noticed quickly, and periodic
/// relay-to-direct probing.
fn resilient_cfg(id: PeerId) -> UdpPeerConfig {
    let mut cfg = UdpPeerConfig::new(id, Scenario::server_endpoint());
    cfg.server_keepalive = Duration::from_secs(2);
    cfg.register_retry = Duration::from_secs(1);
    cfg.punch = PunchConfig::resilient();
    cfg.punch.keepalive_interval = Duration::from_secs(1);
    cfg
}

fn resilient_peer(id: PeerId) -> PeerSetup {
    PeerSetup::new(UdpPeer::new(resilient_cfg(id)))
}

/// Figure-5 topology with two resilient peers, run to an established
/// direct session both ways.
fn established_pair(seed: u64) -> Scenario {
    established_pair_opts(seed, false)
}

/// [`established_pair`], optionally with the metrics registry enabled
/// before any traffic flows (so baseline counters are captured too).
fn established_pair_opts(seed: u64, metrics: bool) -> Scenario {
    let mut sc = fig5(
        seed,
        NatBehavior::well_behaved(),
        NatBehavior::well_behaved(),
        resilient_peer(A),
        resilient_peer(B),
    );
    if metrics {
        sc.world.sim.enable_metrics();
    }
    sc.world.sim.run_for(Duration::from_secs(2));
    sc.world.with_app::<UdpPeer, _>(sc.a, |p, os| p.connect(os, B));
    let deadline = sc.world.sim.now() + Duration::from_secs(20);
    assert!(
        sc.world
            .run_until_app::<UdpPeer>(sc.a, deadline, |p| p.is_established(B)),
        "baseline punch succeeds"
    );
    assert!(
        sc.world
            .run_until_app::<UdpPeer>(sc.b, deadline, |p| p.is_established(A)),
        "baseline punch succeeds on both sides"
    );
    sc
}

/// Sends `payload` a→b and asserts it arrives directly.
fn assert_direct_data(sc: &mut Scenario, payload: &'static [u8]) {
    sc.world
        .with_app::<UdpPeer, _>(sc.a, |p, os| p.send(os, B, Bytes::from_static(payload)));
    sc.world.sim.run_for(Duration::from_secs(2));
    let evs = sc.world.with_app::<UdpPeer, _>(sc.b, |p, _| p.take_events());
    assert!(
        evs.iter().any(|e| matches!(
            e,
            UdpPeerEvent::Data { via: Via::Direct, data, .. } if data.as_ref() == payload
        )),
        "direct data should arrive, got {evs:?}"
    );
}

/// (a) A NAT reboot flushes every mapping and moves the port pool; the
/// peers' liveness detection notices the dead session and the automatic
/// re-punch re-establishes it on fresh mappings.
#[test]
fn udp_session_survives_nat_reboot() {
    let mut sc = established_pair(7);
    let old_remote_of_a = sc.world.app::<UdpPeer>(sc.b).session_remote(A).unwrap();
    // Drop the pre-fault event backlog.
    sc.world.with_app::<UdpPeer, _>(sc.a, |p, _| p.take_events());
    sc.world.with_app::<UdpPeer, _>(sc.b, |p, _| p.take_events());

    let nat_a = sc.world.nats[0];
    sc.world.reboot_nat(nat_a);

    // The session dies (miss-based liveness) and then recovers.
    let deadline = sc.world.sim.now() + Duration::from_secs(30);
    assert!(
        sc.world
            .run_until_app::<UdpPeer>(sc.b, deadline, |p| !p.is_established(A)),
        "B should notice the dead session"
    );
    assert!(
        sc.world
            .run_until_app::<UdpPeer>(sc.b, deadline, |p| p.is_established(A)),
        "auto re-punch should re-establish the session"
    );
    assert!(
        sc.world
            .run_until_app::<UdpPeer>(sc.a, deadline, |p| p.is_established(B)),
        "both sides recover"
    );

    let evs_b = sc.world.with_app::<UdpPeer, _>(sc.b, |p, _| p.take_events());
    assert!(
        evs_b
            .iter()
            .any(|e| matches!(e, UdpPeerEvent::SessionDied { peer } if *peer == A)),
        "B should report the death, got {evs_b:?}"
    );
    let new_remote_of_a = sc.world.app::<UdpPeer>(sc.b).session_remote(A).unwrap();
    assert_ne!(
        old_remote_of_a, new_remote_of_a,
        "the rebooted NAT allocates from a shifted port pool, so the \
         recovered session must use a fresh mapping"
    );
    assert!(
        sc.world.nat(nat_a).stats().reboots >= 1,
        "the fault actually hit the NAT"
    );
    assert_direct_data(&mut sc, b"after-reboot");
}

/// The metrics registry attributes every failure to its reason: re-running
/// fault (a) with metrics enabled must leave the expected counter trail —
/// the reboot itself, the flushed mappings, the keepalive-timeout session
/// deaths, the automatic re-punch, and the recovered establishments (which
/// the punch-latency histogram also observed).
#[test]
fn fault_runs_record_failure_reason_counters() {
    let mut sc = established_pair_opts(7, true);
    let nat_a = sc.world.nats[0];
    sc.world.reboot_nat(nat_a);

    let deadline = sc.world.sim.now() + Duration::from_secs(30);
    assert!(
        sc.world
            .run_until_app::<UdpPeer>(sc.b, deadline, |p| !p.is_established(A)),
        "B should notice the dead session"
    );
    assert!(
        sc.world
            .run_until_app::<UdpPeer>(sc.b, deadline, |p| p.is_established(A)),
        "auto re-punch should re-establish the session"
    );
    assert!(
        sc.world
            .run_until_app::<UdpPeer>(sc.a, deadline, |p| p.is_established(B)),
        "both sides recover"
    );

    let snap = sc.world.sim.metrics_snapshot();
    assert!(snap.counter("nat.reboot", "") >= 1, "reboot not counted");
    assert!(
        snap.counter("nat.mapping.flushed", "") >= 1,
        "the reboot flushed live mappings"
    );
    assert!(
        snap.counter("punch.session_died", "keepalive-timeout") >= 1,
        "liveness death must carry the keepalive-timeout reason, got {}",
        snap.to_json()
    );
    assert!(snap.counter("punch.repunch", "") >= 1, "no re-punch counted");
    // The baseline punch establishes both directions; recovery adds more.
    assert!(
        snap.counter("punch.established", "") >= 3,
        "expected baseline + recovery establishments"
    );
    let lat = snap.histogram("punch.latency").expect("latency histogram");
    assert_eq!(
        lat.count(),
        snap.counter("punch.established", ""),
        "every establishment observes the latency histogram"
    );
    assert_eq!(
        snap.counter_family("punch.failed"),
        0,
        "no punch gave up outright in this scenario"
    );
}

/// (b) The rendezvous server restarts with empty tables while its uplink
/// is down: both peers notice the lost registration (ServerLost), fall
/// back to the registration loop, and re-register once S returns; the
/// direct session is unaffected throughout. A double NAT reboot then
/// proves the restarted server's fresh tables still serve introductions.
#[test]
fn peers_reregister_and_reconnect_after_server_restart() {
    let mut sc = established_pair(11);
    let s = sc.server;
    sc.world.with_app::<UdpPeer, _>(sc.a, |p, _| p.take_events());
    sc.world.with_app::<UdpPeer, _>(sc.b, |p, _| p.take_events());

    // S restarts (tables flushed) and stays unreachable for 8 s.
    let link = sc.world.uplink(s);
    let now = sc.world.sim.now();
    sc.world.restart_server(s);
    let plan = FaultPlan::new().outage(now, Duration::from_secs(8), link);
    sc.world.apply_faults(&plan);

    sc.world.sim.run_for(Duration::from_secs(7));
    assert!(
        !sc.world.app::<UdpPeer>(sc.a).is_registered(),
        "A should notice S stopped acknowledging registrations"
    );
    assert!(
        sc.world.app::<UdpPeer>(sc.a).is_established(B),
        "the direct session does not depend on S"
    );
    let evs_a = sc.world.with_app::<UdpPeer, _>(sc.a, |p, _| p.take_events());
    assert!(
        evs_a.iter().any(|e| matches!(e, UdpPeerEvent::ServerLost)),
        "A should surface the lost server, got {evs_a:?}"
    );

    sc.world.sim.run_for(Duration::from_secs(8));
    assert!(
        sc.world.app::<UdpPeer>(sc.a).is_registered(),
        "A re-registers once S is reachable again"
    );
    assert!(
        sc.world.app::<UdpPeer>(sc.b).is_registered(),
        "B re-registers once S is reachable again"
    );
    let evs_a = sc.world.with_app::<UdpPeer, _>(sc.a, |p, _| p.take_events());
    assert!(
        evs_a
            .iter()
            .any(|e| matches!(e, UdpPeerEvent::Registered { .. })),
        "re-registration surfaces a fresh Registered event, got {evs_a:?}"
    );
    assert!(
        sc.world
            .with_app::<RendezvousServer, _>(s, |srv, _| srv.stats().restarts)
            >= 1,
        "the restart actually hit the server"
    );

    // The restarted S must serve introductions from its fresh tables:
    // kill the session outright by rebooting both NATs and recover.
    let (nat_a, nat_b) = (sc.world.nats[0], sc.world.nats[1]);
    sc.world.reboot_nat(nat_a);
    sc.world.reboot_nat(nat_b);
    let deadline = sc.world.sim.now() + Duration::from_secs(30);
    assert!(
        sc.world
            .run_until_app::<UdpPeer>(sc.b, deadline, |p| !p.is_established(A)),
        "double reboot kills the session"
    );
    assert!(
        sc.world
            .run_until_app::<UdpPeer>(sc.b, deadline, |p| p.is_established(A)),
        "re-punch through the restarted server succeeds"
    );
    assert_direct_data(&mut sc, b"after-restart");
}

/// (c) A persistently blocked pair (A behind a symmetric NAT) degrades
/// to relaying; once the blocking condition clears, the periodic relay
/// probe upgrades the session back to a direct path.
#[test]
fn relayed_pair_upgrades_to_direct_once_fault_clears() {
    let mk = |id: PeerId| {
        let mut cfg = resilient_cfg(id);
        // Keep the failure phase short: constant volley cadence and a
        // small budget, so the pair reaches the relay quickly.
        cfg.punch.backoff = 1.0;
        cfg.punch.backoff_jitter = 0.0;
        cfg.punch.max_attempts = 4;
        PeerSetup::new(UdpPeer::new(cfg))
    };
    let mut sc = fig5(
        13,
        NatBehavior::symmetric(),
        NatBehavior::well_behaved(),
        mk(A),
        mk(B),
    );
    sc.world.sim.run_for(Duration::from_secs(2));
    sc.world.with_app::<UdpPeer, _>(sc.a, |p, os| p.connect(os, B));
    let deadline = sc.world.sim.now() + Duration::from_secs(30);
    assert!(
        sc.world
            .run_until_app::<UdpPeer>(sc.a, deadline, |p| p.is_relaying(B)),
        "symmetric NAT blocks the punch; the pair falls back to the relay"
    );

    // Relayed data flows.
    sc.world
        .with_app::<UdpPeer, _>(sc.a, |p, os| p.send(os, B, Bytes::from_static(b"via-relay")));
    sc.world.sim.run_for(Duration::from_secs(2));
    let evs_b = sc.world.with_app::<UdpPeer, _>(sc.b, |p, _| p.take_events());
    assert!(
        evs_b.iter().any(|e| matches!(
            e,
            UdpPeerEvent::Data { via: Via::Relay, data, .. } if data.as_ref() == b"via-relay"
        )),
        "relay carries traffic while blocked, got {evs_b:?}"
    );

    // The blocking condition clears: A's NAT becomes well-behaved.
    let nat_a = sc.world.nats[0];
    sc.world.set_nat_behavior(nat_a, NatBehavior::well_behaved());

    // The periodic relay probe discovers the now-punchable path.
    let deadline = sc.world.sim.now() + Duration::from_secs(30);
    assert!(
        sc.world
            .run_until_app::<UdpPeer>(sc.a, deadline, |p| p.is_established(B)),
        "relay probe upgrades the session to a direct path"
    );
    assert!(
        sc.world
            .run_until_app::<UdpPeer>(sc.b, deadline, |p| p.is_established(A)),
        "the upgrade lands on both sides"
    );
    assert_direct_data(&mut sc, b"direct-again");
}

/// §3.6 refinement: application traffic refreshes the NAT mapping, so
/// the keepalive timer suppresses its redundant datagram and reschedules
/// off the last packet actually sent; idle sessions still keep the
/// paper's cadence.
#[test]
fn app_traffic_suppresses_redundant_keepalives() {
    // Chatty pair: data every 400 ms, well under the 1 s keepalive
    // interval — the sender never needs a peer keepalive of its own.
    let mut sc = established_pair(31);
    for _ in 0..25 {
        sc.world
            .with_app::<UdpPeer, _>(sc.a, |p, os| p.send(os, B, Bytes::from_static(b"tick")));
        sc.world.sim.run_for(Duration::from_millis(400));
    }
    let stats = sc.world.app::<UdpPeer>(sc.a).stats();
    assert_eq!(
        stats.keepalives_sent, 0,
        "app traffic kept the mapping fresh: {stats:?}"
    );
    assert!(
        stats.keepalives_suppressed > 0,
        "the timer kept checking: {stats:?}"
    );
    assert!(
        sc.world.app::<UdpPeer>(sc.a).is_established(B),
        "suppression must not let the session rot"
    );

    // Idle pair: keepalives flow at the configured cadence.
    let mut idle = established_pair(32);
    idle.world.sim.run_for(Duration::from_secs(10));
    let stats = idle.world.app::<UdpPeer>(idle.a).stats();
    assert!(
        stats.keepalives_sent >= 8,
        "idle sessions keep the hole open: {stats:?}"
    );
    assert_eq!(stats.keepalives_suppressed, 0, "nothing to suppress: {stats:?}");
}

/// The NAT-reboot chaos scenario is byte-identical across reruns of the
/// same seed: identical event sequences, stats, and recovery timestamps.
#[test]
fn chaos_recovery_is_deterministic() {
    let fingerprint = |seed: u64| {
        let mut sc = established_pair(seed);
        let nat_a = sc.world.nats[0];
        sc.world.reboot_nat(nat_a);
        let deadline = sc.world.sim.now() + Duration::from_secs(30);
        sc.world
            .run_until_app::<UdpPeer>(sc.b, deadline, |p| !p.is_established(A));
        let died_at = sc.world.sim.now();
        sc.world
            .run_until_app::<UdpPeer>(sc.b, deadline, |p| p.is_established(A));
        let recovered_at = sc.world.sim.now();
        let evs_a = sc.world.with_app::<UdpPeer, _>(sc.a, |p, _| p.take_events());
        let evs_b = sc.world.with_app::<UdpPeer, _>(sc.b, |p, _| p.take_events());
        let stats_a = sc.world.app::<UdpPeer>(sc.a).stats();
        let stats_b = sc.world.app::<UdpPeer>(sc.b).stats();
        let sim_stats = sc.world.sim.stats();
        (
            format!("{died_at:?} {recovered_at:?} {evs_a:?} {evs_b:?} {stats_a:?} {stats_b:?}"),
            sim_stats,
        )
    };
    let (first, first_stats) = fingerprint(21);
    let (second, second_stats) = fingerprint(21);
    assert_eq!(first, second, "same seed, same chaos, same recovery");
    // SimStats equality ignores the wall-clock diagnostic field.
    assert_eq!(first_stats, second_stats, "identical engine trajectories");
    let (other, _) = fingerprint(22);
    assert_ne!(
        first, other,
        "a different seed should explore a different trajectory"
    );
}
