//! Failure injection and scale tests across the whole stack.

use bytes::Bytes;
use p2p_punch::prelude::*;
use p2p_punch::punch::{TcpPeer, TcpPeerConfig, UdpPeer, UdpPeerConfig};
use punch_lab::{addrs, PeerSetup, WorldBuilder};

/// A full mesh of four clients behind four distinct NATs: every pair
/// punches, every pair exchanges data, sessions coexist on one socket.
#[test]
fn four_way_udp_mesh() {
    let server = Scenario::server_endpoint();
    let mut wb = WorldBuilder::new(1);
    wb.server(
        addrs::SERVER,
        RendezvousServer::new(ServerConfig::default()),
    );
    let ips = ["20.0.0.1", "21.0.0.1", "22.0.0.1", "23.0.0.1"];
    let mut nodes = Vec::new();
    for (i, pub_ip) in ips.iter().enumerate() {
        let nat = wb.nat(NatBehavior::well_behaved(), pub_ip.parse().unwrap());
        let idx = wb.client(
            format!("10.0.{i}.1").parse().unwrap(),
            nat,
            PeerSetup::new(UdpPeer::new(UdpPeerConfig::new(
                PeerId(i as u64 + 1),
                server,
            ))),
        );
        nodes.push(idx);
    }
    let world = wb.build();
    let clients: Vec<_> = nodes.iter().map(|&i| world.clients[i]).collect();
    let mut world = world;
    world.sim.run_for(Duration::from_secs(2));

    // Everyone connects to everyone with a higher id.
    for (i, &node) in clients.iter().enumerate() {
        for j in (i + 1)..4 {
            let target = PeerId(j as u64 + 1);
            world.with_app::<UdpPeer, _>(node, |p, os| p.connect(os, target));
        }
    }
    world.sim.run_for(Duration::from_secs(15));
    for (i, &node) in clients.iter().enumerate() {
        for j in 0..4 {
            if i == j {
                continue;
            }
            assert!(
                world
                    .app::<UdpPeer>(node)
                    .is_established(PeerId(j as u64 + 1)),
                "client {i} should reach client {j}"
            );
        }
    }
    // Data across every pair.
    for (i, &node) in clients.iter().enumerate() {
        for j in 0..4 {
            if i == j {
                continue;
            }
            let target = PeerId(j as u64 + 1);
            let msg = Bytes::from(format!("{i}->{j}"));
            world.with_app::<UdpPeer, _>(node, |p, os| p.send(os, target, msg));
        }
    }
    world.sim.run_for(Duration::from_secs(3));
    for (j, &node) in clients.iter().enumerate() {
        let events = world.with_app::<UdpPeer, _>(node, |p, _| p.take_events());
        let got = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    UdpPeerEvent::Data {
                        via: Via::Direct,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(got, 3, "client {j} hears from all three peers");
    }
}

/// The rendezvous server restarts (drops every connection and forgets all
/// registrations); TCP peers must reconnect, re-register, and still punch.
#[test]
fn tcp_peers_survive_rendezvous_restart() {
    let server = Scenario::server_endpoint();
    let mk = |id| {
        PeerSetup::new(TcpPeer::new(TcpPeerConfig::new(id, server))).with_stack(StackConfig::fast())
    };
    let mut wb = WorldBuilder::new(2);
    wb.server(
        addrs::SERVER,
        RendezvousServer::new(ServerConfig::default()),
    );
    let na = wb.nat(NatBehavior::well_behaved(), addrs::NAT_A);
    let nb = wb.nat(NatBehavior::well_behaved(), addrs::NAT_B);
    wb.client(addrs::CLIENT_A, na, mk(PeerId(1)));
    wb.client(addrs::CLIENT_B, nb, mk(PeerId(2)));
    let mut world = wb.build();
    let (s, a, b) = (world.servers[0], world.clients[0], world.clients[1]);
    world.sim.run_for(Duration::from_secs(2));
    assert!(
        world.app::<TcpPeer>(a).public_endpoint().is_some(),
        "registered before restart"
    );

    // Server "restarts".
    world.with_app::<RendezvousServer, _>(s, |srv, os| srv.drop_all_clients(os));
    world.sim.run_for(Duration::from_secs(5));
    assert!(
        world.app::<TcpPeer>(a).public_endpoint().is_some(),
        "client re-registered after the restart"
    );

    // And punching still works end to end.
    world.with_app::<TcpPeer, _>(a, |p, os| p.connect(os, PeerId(2)));
    let deadline = world.sim.now() + Duration::from_secs(40);
    assert!(world.run_until_app::<TcpPeer>(a, deadline, |p| p.is_established(PeerId(2))));
    assert!(world.run_until_app::<TcpPeer>(b, deadline, |p| p.is_established(PeerId(1))));
}

/// A UDP peer talking to two different peers at once keeps independent
/// sessions (one socket, many holes — §4.2's contrast with TCP).
#[test]
fn one_socket_many_sessions() {
    let server = Scenario::server_endpoint();
    let mut wb = WorldBuilder::new(3);
    wb.server(
        addrs::SERVER,
        RendezvousServer::new(ServerConfig::default()),
    );
    let hub_nat = wb.nat(NatBehavior::well_behaved(), addrs::NAT_A);
    let hub = wb.client(
        addrs::CLIENT_A,
        hub_nat,
        PeerSetup::new(UdpPeer::new(UdpPeerConfig::new(PeerId(1), server))),
    );
    let nb = wb.nat(NatBehavior::well_behaved(), addrs::NAT_B);
    let b = wb.client(
        addrs::CLIENT_B,
        nb,
        PeerSetup::new(UdpPeer::new(UdpPeerConfig::new(PeerId(2), server))),
    );
    let nc = wb.nat(NatBehavior::symmetric(), "99.9.9.9".parse().unwrap());
    let c = wb.client(
        "10.2.2.2".parse().unwrap(),
        nc,
        PeerSetup::new(UdpPeer::new(UdpPeerConfig::new(PeerId(3), server))),
    );
    let world = wb.build();
    let (hub, b, c) = (world.clients[hub], world.clients[b], world.clients[c]);
    let mut world = world;
    world.sim.run_for(Duration::from_secs(2));
    world.with_app::<UdpPeer, _>(hub, |p, os| {
        p.connect(os, PeerId(2));
        p.connect(os, PeerId(3));
    });
    world.sim.run_for(Duration::from_secs(20));
    let app = world.app::<UdpPeer>(hub);
    assert!(app.is_established(PeerId(2)), "cone peer: direct");
    assert!(app.is_relaying(PeerId(3)), "symmetric peer: relayed");
    // The two outcomes coexist on one socket; data routes per session.
    world.with_app::<UdpPeer, _>(hub, |p, os| {
        p.send(os, PeerId(2), Bytes::from_static(b"to-b"));
        p.send(os, PeerId(3), Bytes::from_static(b"to-c"));
    });
    world.sim.run_for(Duration::from_secs(2));
    let evs_b = world.with_app::<UdpPeer, _>(b, |p, _| p.take_events());
    let evs_c = world.with_app::<UdpPeer, _>(c, |p, _| p.take_events());
    assert!(evs_b
        .iter()
        .any(|e| matches!(e, UdpPeerEvent::Data { data, via: Via::Direct, .. } if data.as_ref() == b"to-b")));
    assert!(evs_c
        .iter()
        .any(|e| matches!(e, UdpPeerEvent::Data { data, via: Via::Relay, .. } if data.as_ref() == b"to-c")));
}
