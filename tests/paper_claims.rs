//! Cross-crate integration tests asserting the paper's headline claims
//! through the public API (the experiment index's acceptance tests).

use p2p_punch::prelude::*;
use punch_bench::{udp_punch, Outcome, Topology};

#[test]
fn cone_nat_pairs_always_punch_directly() {
    // §5.1: endpoint-independent mapping is the precondition; all three
    // cone flavours satisfy it.
    let cones = [
        NatBehavior::full_cone(),
        NatBehavior::restricted_cone(),
        NatBehavior::port_restricted_cone(),
        NatBehavior::well_behaved(),
    ];
    for (i, na) in cones.iter().enumerate() {
        for (j, nb) in cones.iter().enumerate() {
            let out = udp_punch(
                Topology::TwoNats(Some(na.clone()), Some(nb.clone())),
                (i * 4 + j) as u64,
                |_| {},
            );
            assert!(
                matches!(out, Outcome::Direct(_)),
                "cone pair ({i},{j}) must punch, got {out:?}"
            );
        }
    }
}

#[test]
fn symmetric_against_port_restricted_requires_relay() {
    let out = udp_punch(
        Topology::TwoNats(
            Some(NatBehavior::symmetric()),
            Some(NatBehavior::port_restricted_cone()),
        ),
        1,
        |_| {},
    );
    assert_eq!(out, Outcome::Relay);
}

#[test]
fn symmetric_against_full_cone_still_punches() {
    // The symmetric side's fresh mapping doesn't matter when the peer
    // filters nothing: the cone side simply replies to whatever source
    // it saw.
    let out = udp_punch(
        Topology::TwoNats(
            Some(NatBehavior::symmetric()),
            Some(NatBehavior::full_cone()),
        ),
        2,
        |_| {},
    );
    assert!(matches!(out, Outcome::Direct(_)), "{out:?}");
}

#[test]
fn multilevel_hinges_on_isp_hairpin() {
    let consumer = NatBehavior::well_behaved().with_hairpin(Hairpin::None);
    let with = udp_punch(
        Topology::MultiLevel {
            isp: NatBehavior::well_behaved(),
            consumer: consumer.clone(),
        },
        3,
        |_| {},
    );
    assert!(matches!(with, Outcome::Direct(_)));
    let without = udp_punch(
        Topology::MultiLevel {
            isp: NatBehavior::well_behaved().with_hairpin(Hairpin::None),
            consumer,
        },
        3,
        |_| {},
    );
    assert_eq!(without, Outcome::Relay);
}

#[test]
fn capped_survey_matches_paper_shape() {
    // A 6-device-per-vendor survey is enough to confirm the shape: UDP
    // compatibility is widespread, hairpin is rare, TCP sits in between.
    let result = p2p_punch::natcheck::run_survey(7, Some(6));
    let udp_rate = result.total.udp.0 as f64 / result.total.udp.1 as f64;
    let hairpin_rate = result.total.udp_hairpin.0 as f64 / result.total.udp_hairpin.1.max(1) as f64;
    let tcp_rate = result.total.tcp.0 as f64 / result.total.tcp.1.max(1) as f64;
    assert!(
        udp_rate > 0.6,
        "UDP punching should be widespread, got {udp_rate}"
    );
    assert!(
        hairpin_rate < 0.5,
        "hairpin should be rare, got {hairpin_rate}"
    );
    assert!(
        tcp_rate > 0.3 && tcp_rate < udp_rate + 0.15,
        "TCP in between, got {tcp_rate}"
    );
}

#[test]
fn full_survey_reproduces_table1_totals_exactly() {
    // The real thing: 380 devices, measured end-to-end.
    let result = p2p_punch::natcheck::run_survey(2005, None);
    assert_eq!(
        result.total.udp,
        (310, 380),
        "UDP hole punching: paper says 310/380"
    );
    assert_eq!(
        result.total.udp_hairpin,
        (80, 335),
        "UDP hairpin: paper says 80/335"
    );
    assert_eq!(
        result.total.tcp,
        (184, 286),
        "TCP hole punching: paper says 184/286"
    );
    // The paper prints 37/286 but its own vendor rows sum to 40/284; our
    // measured total must land in that neighbourhood.
    let (thp, thp_n) = result.total.tcp_hairpin;
    assert!(
        (36..=44).contains(&thp),
        "TCP hairpin ≈ paper, got {thp}/{thp_n}"
    );
}

#[test]
fn deterministic_runs_are_bitwise_identical() {
    let run = || {
        let out = udp_punch(
            Topology::TwoNats(
                Some(NatBehavior::well_behaved()),
                Some(NatBehavior::well_behaved()),
            ),
            99,
            |_| {},
        );
        match out {
            Outcome::Direct(d) => d,
            other => panic!("{other:?}"),
        }
    };
    assert_eq!(
        run(),
        run(),
        "same seed, same punch latency to the nanosecond"
    );
}
