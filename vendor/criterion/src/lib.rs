//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, covering the API subset this workspace's benches
//! use: `criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function`, `Bencher::iter`, `Throughput`, and `black_box`.
//!
//! Measurement is deliberately simple — warm up, then run timed batches
//! until the measurement window closes, and report mean wall-clock per
//! iteration (plus derived throughput when configured). No statistics,
//! plots, or saved baselines; good enough to compare hot-path changes
//! order-of-magnitude style while staying dependency-free.

#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level harness configuration and entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_secs(1),
            sample_size: 50,
        }
    }
}

impl Criterion {
    /// Sets the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up window.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the target number of samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Parses CLI configuration (accepted and ignored in the stand-in).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let cfg = self.clone();
        run_bench(&cfg, name, None, f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Sets the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let cfg = self.criterion.clone();
        run_bench(&cfg, &full, self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Iterations to run in the current batch.
    iters: u64,
    /// Time spent inside `iter` bodies for the current batch.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it as many times as the harness asks.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench(
    cfg: &Criterion,
    name: &str,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Warm-up: grow the batch size until one batch takes ~10 ms, so the
    // measurement loop has a sensible granularity.
    let mut iters = 1u64;
    let warm_start = Instant::now();
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if warm_start.elapsed() >= cfg.warm_up_time {
            break;
        }
        if b.elapsed < Duration::from_millis(10) {
            iters = iters.saturating_mul(2);
        }
    }

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    let mut samples = 0usize;
    let measure_start = Instant::now();
    while measure_start.elapsed() < cfg.measurement_time || samples < 2 {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += iters;
        samples += 1;
        if samples >= cfg.sample_size && measure_start.elapsed() >= cfg.measurement_time {
            break;
        }
    }

    let per_iter = if total_iters == 0 {
        Duration::ZERO
    } else {
        total / u32::try_from(total_iters.min(u64::from(u32::MAX))).unwrap_or(u32::MAX)
    };
    let per_iter_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(
                "  ({:.0} elem/s)",
                n as f64 * 1e9 / per_iter_ns.max(f64::MIN_POSITIVE)
            )
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 * 1e9 / per_iter_ns.max(f64::MIN_POSITIVE) / (1024.0 * 1024.0)
            )
        }
        None => String::new(),
    };
    let _ = per_iter;
    println!(
        "bench: {name:<40} {:>12.1} ns/iter  [{} samples x {} iters]{}",
        per_iter_ns, samples, iters, rate
    );
}

/// Declares a group of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
