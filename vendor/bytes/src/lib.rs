//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes)
//! crate, providing the subset of its API this workspace uses.
//!
//! [`Bytes`] is an immutable, cheaply-cloneable byte buffer backed by an
//! `Arc<[u8]>` plus a `(start, end)` window — `clone` and `slice` are
//! O(1) and never copy. [`BytesMut`] is a growable buffer over `Vec<u8>`
//! with a read cursor, so the codec pattern `extend_from_slice` /
//! `advance` / `split_to` / `freeze` works as upstream. The [`Buf`] and
//! [`BufMut`] traits carry the big-endian integer accessors the wire
//! codecs rely on.

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer; `clone` is O(1).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates a buffer from a static slice.
    ///
    /// (Upstream borrows the slice; this stand-in copies it once, which
    /// is indistinguishable apart from the allocation.)
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }

    /// Creates a buffer holding a copy of `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
            start: 0,
            end: data.len(),
        }
    }

    /// Returns the number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns the bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Returns a sub-window of this buffer without copying.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer with a read cursor.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
    /// Read cursor: bytes before this index have been consumed.
    head: usize,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
            head: 0,
        }
    }

    /// Returns the number of unread bytes.
    pub fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    /// Returns `true` if no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends `data`.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.compact_if_large();
        self.buf.extend_from_slice(data);
    }

    /// Reserves space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Splits off and returns the first `at` unread bytes.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = BytesMut {
            buf: self.buf[self.head..self.head + at].to_vec(),
            head: 0,
        };
        self.head += at;
        self.compact_if_large();
        head
    }

    /// Freezes into an immutable [`Bytes`] without copying the tail.
    pub fn freeze(mut self) -> Bytes {
        if self.head > 0 {
            self.buf.drain(..self.head);
        }
        Bytes::from(self.buf)
    }

    fn as_slice(&self) -> &[u8] {
        &self.buf[self.head..]
    }

    /// Drops consumed prefix bytes once they dominate the allocation, so
    /// long-lived stream reassembly buffers do not grow without bound.
    fn compact_if_large(&mut self) {
        if self.head > 4096 && self.head * 2 >= self.buf.len() {
            self.buf.drain(..self.head);
            self.head = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let head = self.head;
        &mut self.buf[head..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(self.as_slice()), f)
    }
}

/// Read access to a sequence of bytes, with big-endian integer getters.
pub trait Buf {
    /// Returns how many bytes remain.
    fn remaining(&self) -> usize;

    /// Returns the current unread bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Returns `true` if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies bytes into `dst` and consumes them.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.head += cnt;
        self.compact_if_large();
    }
}

/// Write access to a growable byte sink, with big-endian integer putters.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_clone_and_slice_share_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(b.len(), 5);
        let c = b.clone();
        assert_eq!(c, b);
        assert!(Arc::ptr_eq(&c.data, &b.data));
    }

    #[test]
    fn bytes_split_to_consumes_prefix() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4]);
    }

    #[test]
    fn buf_getters_are_big_endian() {
        let b = Bytes::from(vec![0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0xff, 0x10]);
        let mut buf = b.clone();
        assert_eq!(buf.get_u16(), 0x0102);
        assert_eq!(buf.get_u64(), 0x0304_0506_0708_09ffu64);
        assert_eq!(buf.get_u8(), 0x10);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn bufmut_putters_roundtrip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(7);
        m.put_u16(0x0102);
        m.put_u32(0x03040506);
        m.put_u64(0x0708090a0b0c0d0e);
        m.put_slice(b"xy");
        let frozen = m.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x0102);
        assert_eq!(r.get_u32(), 0x03040506);
        assert_eq!(r.get_u64(), 0x0708090a0b0c0d0e);
        assert_eq!(r, b"xy");
    }

    #[test]
    fn bytesmut_advance_and_split_follow_cursor() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"\x00\x05hello world");
        m.advance(2);
        let body = m.split_to(5);
        assert_eq!(&body[..], b"hello");
        assert_eq!(&m[..], b" world");
        assert_eq!(m.freeze(), b" world"[..]);
    }

    #[test]
    fn bytesmut_compaction_preserves_content() {
        let mut m = BytesMut::new();
        for i in 0..4096u32 {
            m.extend_from_slice(&i.to_be_bytes());
        }
        m.advance(8192);
        m.extend_from_slice(b"tail");
        assert_eq!(m.len(), 8192 + 4);
        let frozen = m.freeze();
        assert_eq!(&frozen[frozen.len() - 4..], b"tail");
        assert_eq!(&frozen[..4], &2048u32.to_be_bytes());
    }

    #[test]
    fn slice_buf_advances() {
        let data = [1u8, 2, 3];
        let mut s: &[u8] = &data;
        assert_eq!(s.get_u8(), 1);
        assert_eq!(s.remaining(), 2);
        s.advance(1);
        assert_eq!(s.chunk(), &[3]);
    }
}
