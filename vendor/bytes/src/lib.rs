//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes)
//! crate, providing the subset of its API this workspace uses.
//!
//! [`Bytes`] is an immutable, cheaply-cloneable byte buffer with a
//! small-buffer optimization: content up to 64 bytes is stored inline
//! (clone/slice are a struct copy, no heap), while larger content sits
//! behind an `Arc<Vec<u8>>` plus a `(start, end)` window — `clone` and
//! `slice` are O(1) and never copy the payload, and freezing a `Vec`
//! moves it behind the `Arc` without copying. [`BytesMut`] is the
//! growable counterpart with a read cursor (inline until it outgrows
//! the inline space), so the codec pattern `extend_from_slice` /
//! `advance` / `split_to` / `freeze` works as upstream and encoding a
//! small wire message allocates nothing. The [`Buf`] and [`BufMut`]
//! traits carry the big-endian integer accessors the wire codecs rely
//! on.

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Buffers at or below this length are stored inline (no heap); above
/// it they live behind an `Arc<Vec<u8>>`. 64 bytes covers every control
/// message in this workspace's wire protocols, so the hot
/// encode-freeze-deliver path allocates nothing.
const INLINE_CAP: usize = 64;

#[derive(Clone)]
enum Repr {
    /// Small-buffer form: the window `buf[start..end]`, owned inline.
    Inline {
        buf: [u8; INLINE_CAP],
        start: u8,
        end: u8,
    },
    /// Shared form: the window `data[start..end]` of a refcounted heap
    /// buffer; `clone`/`slice` bump the refcount instead of copying.
    Shared {
        data: Arc<Vec<u8>>,
        start: usize,
        end: usize,
    },
}

/// An immutable, cheaply-cloneable byte buffer.
///
/// Buffers up to [`INLINE_CAP`] bytes are stored inline — clone and
/// slice are a memcpy of the struct, never a heap operation. Larger
/// buffers are reference-counted; `clone` is O(1).
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes {
            repr: Repr::Inline {
                buf: [0; INLINE_CAP],
                start: 0,
                end: 0,
            },
        }
    }
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates a buffer from a static slice.
    ///
    /// (Upstream borrows the slice; this stand-in copies it once, which
    /// is indistinguishable apart from the allocation.)
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }

    /// Creates a buffer holding a copy of `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        if data.len() <= INLINE_CAP {
            let mut buf = [0; INLINE_CAP];
            buf[..data.len()].copy_from_slice(data);
            return Bytes {
                repr: Repr::Inline {
                    buf,
                    start: 0,
                    end: data.len() as u8,
                },
            };
        }
        Bytes {
            repr: Repr::Shared {
                data: Arc::new(data.to_vec()),
                start: 0,
                end: data.len(),
            },
        }
    }

    /// Returns the number of bytes in the buffer.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { start, end, .. } => (end - start) as usize,
            Repr::Shared { start, end, .. } => end - start,
        }
    }

    /// Returns `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Inline { buf, start, end } => &buf[*start as usize..*end as usize],
            Repr::Shared { data, start, end } => &data[*start..*end],
        }
    }

    /// Returns a sub-window of this buffer without copying the payload
    /// to the heap (inline buffers are copied inline; shared buffers
    /// share storage).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        match &self.repr {
            Repr::Inline { buf, start, .. } => Bytes {
                repr: Repr::Inline {
                    buf: *buf,
                    start: start + begin as u8,
                    end: start + end as u8,
                },
            },
            Repr::Shared { data, start, .. } => Bytes {
                repr: Repr::Shared {
                    data: Arc::clone(data),
                    start: start + begin,
                    end: start + end,
                },
            },
        }
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.slice(..at);
        match &mut self.repr {
            Repr::Inline { start, .. } => *start += at as u8,
            Repr::Shared { start, .. } => *start += at,
        }
        head
    }

    #[cfg(test)]
    fn shared_arc(&self) -> Option<&Arc<Vec<u8>>> {
        match &self.repr {
            Repr::Inline { .. } => None,
            Repr::Shared { data, .. } => Some(data),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    /// Takes ownership of `v` without copying the payload: the freeze
    /// path (encode into a `Vec`/`BytesMut`, then publish as `Bytes`)
    /// costs one `Arc` allocation, never a payload copy. (Small vectors
    /// are deliberately not converted to the inline form — the caller
    /// already paid for the heap buffer, so moving it is cheaper than
    /// copying and freeing.)
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            repr: Repr::Shared {
                data: Arc::new(v),
                start: 0,
                end,
            },
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer with a read cursor.
///
/// Content at or below [`INLINE_CAP`] unconsumed bytes starts inline
/// (no heap); the buffer spills to a `Vec` only when it outgrows the
/// inline space. Together with the inline form of [`Bytes`], this makes
/// encoding and freezing a small wire message allocation-free.
#[derive(Clone)]
enum MutRepr {
    /// Unread window `buf[head..len]`, owned inline.
    Inline {
        buf: [u8; INLINE_CAP],
        head: u8,
        len: u8,
    },
    /// Spilled form; unread window is `buf[head..]`.
    Heap { buf: Vec<u8>, head: usize },
}

/// See the module docs; this is the mutable counterpart of [`Bytes`].
#[derive(Clone)]
pub struct BytesMut {
    repr: MutRepr,
}

impl Default for BytesMut {
    fn default() -> Self {
        BytesMut {
            repr: MutRepr::Inline {
                buf: [0; INLINE_CAP],
                head: 0,
                len: 0,
            },
        }
    }
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        if cap <= INLINE_CAP {
            return BytesMut::default();
        }
        BytesMut {
            repr: MutRepr::Heap {
                buf: Vec::with_capacity(cap),
                head: 0,
            },
        }
    }

    /// Returns the number of unread bytes.
    pub fn len(&self) -> usize {
        match &self.repr {
            MutRepr::Inline { head, len, .. } => (len - head) as usize,
            MutRepr::Heap { buf, head } => buf.len() - head,
        }
    }

    /// Returns `true` if no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Moves inline content to the heap with room for `additional` more
    /// bytes. Consumed prefix bytes are dropped in the move (invisible
    /// to the read-cursor API).
    fn spill(&mut self, additional: usize) {
        if let MutRepr::Inline { buf, head, len } = &self.repr {
            let unread = &buf[*head as usize..*len as usize];
            let mut v = Vec::with_capacity((unread.len() + additional).max(2 * INLINE_CAP));
            v.extend_from_slice(unread);
            self.repr = MutRepr::Heap { buf: v, head: 0 };
        }
    }

    /// Appends `data`.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        match &mut self.repr {
            MutRepr::Inline { buf, len, .. } if *len as usize + data.len() <= INLINE_CAP => {
                buf[*len as usize..*len as usize + data.len()].copy_from_slice(data);
                *len += data.len() as u8;
            }
            MutRepr::Inline { .. } => {
                self.spill(data.len());
                self.extend_from_slice(data);
            }
            MutRepr::Heap { buf, head } => {
                compact_if_large(buf, head);
                buf.extend_from_slice(data);
            }
        }
    }

    /// Reserves space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        match &mut self.repr {
            MutRepr::Inline { len, .. } => {
                if *len as usize + additional > INLINE_CAP {
                    self.spill(additional);
                }
            }
            MutRepr::Heap { buf, .. } => buf.reserve(additional),
        }
    }

    /// Splits off and returns the first `at` unread bytes.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        match &mut self.repr {
            MutRepr::Inline { buf, head, .. } => {
                let mut out = [0; INLINE_CAP];
                out[..at].copy_from_slice(&buf[*head as usize..*head as usize + at]);
                *head += at as u8;
                BytesMut {
                    repr: MutRepr::Inline {
                        buf: out,
                        head: 0,
                        len: at as u8,
                    },
                }
            }
            MutRepr::Heap { buf, head } => {
                let split = if at <= INLINE_CAP {
                    let mut out = [0; INLINE_CAP];
                    out[..at].copy_from_slice(&buf[*head..*head + at]);
                    BytesMut {
                        repr: MutRepr::Inline {
                            buf: out,
                            head: 0,
                            len: at as u8,
                        },
                    }
                } else {
                    BytesMut {
                        repr: MutRepr::Heap {
                            buf: buf[*head..*head + at].to_vec(),
                            head: 0,
                        },
                    }
                };
                *head += at;
                compact_if_large(buf, head);
                split
            }
        }
    }

    /// Freezes into an immutable [`Bytes`] without copying a heap tail
    /// (inline content stays inline, costing nothing).
    pub fn freeze(self) -> Bytes {
        match self.repr {
            MutRepr::Inline { buf, head, len } => Bytes::copy_from_slice(&buf[head as usize..len as usize]),
            MutRepr::Heap { mut buf, head } => {
                if head > 0 {
                    buf.drain(..head);
                }
                Bytes::from(buf)
            }
        }
    }

    fn as_slice(&self) -> &[u8] {
        match &self.repr {
            MutRepr::Inline { buf, head, len } => &buf[*head as usize..*len as usize],
            MutRepr::Heap { buf, head } => &buf[*head..],
        }
    }
}

/// Drops consumed prefix bytes once they dominate the allocation, so
/// long-lived stream reassembly buffers do not grow without bound.
fn compact_if_large(buf: &mut Vec<u8>, head: &mut usize) {
    if *head > 4096 && *head * 2 >= buf.len() {
        buf.drain(..*head);
        *head = 0;
    }
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for BytesMut {}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        match &mut self.repr {
            MutRepr::Inline { buf, head, len } => &mut buf[*head as usize..*len as usize],
            MutRepr::Heap { buf, head } => {
                let head = *head;
                &mut buf[head..]
            }
        }
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(self.as_slice()), f)
    }
}

/// Read access to a sequence of bytes, with big-endian integer getters.
pub trait Buf {
    /// Returns how many bytes remain.
    fn remaining(&self) -> usize;

    /// Returns the current unread bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Returns `true` if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies bytes into `dst` and consumes them.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        match &mut self.repr {
            Repr::Inline { start, .. } => *start += cnt as u8,
            Repr::Shared { start, .. } => *start += cnt,
        }
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        match &mut self.repr {
            MutRepr::Inline { head, .. } => *head += cnt as u8,
            MutRepr::Heap { buf, head } => {
                *head += cnt;
                compact_if_large(buf, head);
            }
        }
    }
}

/// Write access to a growable byte sink, with big-endian integer putters.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_clone_and_slice_share_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(b.len(), 5);
        let c = b.clone();
        assert_eq!(c, b);
        assert!(Arc::ptr_eq(
            c.shared_arc().expect("From<Vec> is shared"),
            b.shared_arc().expect("From<Vec> is shared"),
        ));
    }

    #[test]
    fn small_buffers_stay_inline_and_behave_like_shared() {
        // copy_from_slice at or under the inline cap never touches the
        // heap; all window operations must be indistinguishable from the
        // shared form.
        let data: Vec<u8> = (0..INLINE_CAP as u8).collect();
        let b = Bytes::copy_from_slice(&data);
        assert!(b.shared_arc().is_none(), "should be inline");
        assert_eq!(b.len(), INLINE_CAP);
        let s = b.slice(10..20);
        assert!(s.shared_arc().is_none());
        assert_eq!(&s[..], &data[10..20]);
        let mut rest = b.clone();
        let head = rest.split_to(5);
        assert_eq!(&head[..], &data[..5]);
        assert_eq!(&rest[..], &data[5..]);
        // One past the cap spills to the shared form.
        let big = Bytes::copy_from_slice(&vec![7u8; INLINE_CAP + 1]);
        assert!(big.shared_arc().is_some());
    }

    #[test]
    fn bytesmut_spills_across_the_inline_cap() {
        let mut m = BytesMut::with_capacity(8);
        let payload: Vec<u8> = (0..200u8).collect();
        for chunk in payload.chunks(7) {
            m.extend_from_slice(chunk);
        }
        assert_eq!(&m[..], &payload[..]);
        m.advance(3);
        let part = m.split_to(100);
        assert_eq!(&part[..], &payload[3..103]);
        assert_eq!(m.freeze(), payload[103..]);
    }

    #[test]
    fn bytes_split_to_consumes_prefix() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4]);
    }

    #[test]
    fn buf_getters_are_big_endian() {
        let b = Bytes::from(vec![0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0xff, 0x10]);
        let mut buf = b.clone();
        assert_eq!(buf.get_u16(), 0x0102);
        assert_eq!(buf.get_u64(), 0x0304_0506_0708_09ffu64);
        assert_eq!(buf.get_u8(), 0x10);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn bufmut_putters_roundtrip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(7);
        m.put_u16(0x0102);
        m.put_u32(0x03040506);
        m.put_u64(0x0708090a0b0c0d0e);
        m.put_slice(b"xy");
        let frozen = m.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x0102);
        assert_eq!(r.get_u32(), 0x03040506);
        assert_eq!(r.get_u64(), 0x0708090a0b0c0d0e);
        assert_eq!(r, b"xy");
    }

    #[test]
    fn bytesmut_advance_and_split_follow_cursor() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"\x00\x05hello world");
        m.advance(2);
        let body = m.split_to(5);
        assert_eq!(&body[..], b"hello");
        assert_eq!(&m[..], b" world");
        assert_eq!(m.freeze(), b" world"[..]);
    }

    #[test]
    fn bytesmut_compaction_preserves_content() {
        let mut m = BytesMut::new();
        for i in 0..4096u32 {
            m.extend_from_slice(&i.to_be_bytes());
        }
        m.advance(8192);
        m.extend_from_slice(b"tail");
        assert_eq!(m.len(), 8192 + 4);
        let frozen = m.freeze();
        assert_eq!(&frozen[frozen.len() - 4..], b"tail");
        assert_eq!(&frozen[..4], &2048u32.to_be_bytes());
    }

    #[test]
    fn slice_buf_advances() {
        let data = [1u8, 2, 3];
        let mut s: &[u8] = &data;
        assert_eq!(s.get_u8(), 1);
        assert_eq!(s.remaining(), 2);
        s.advance(1);
        assert_eq!(s.chunk(), &[3]);
    }
}
