//! Sequence-related helpers: shuffling and random element choice.

use crate::Rng;

/// Extension methods on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = crate::distributions::SampleUniform::sample_inclusive(rng, 0usize, i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = crate::distributions::SampleUniform::sample_inclusive(
                rng,
                0usize,
                self.len() - 1,
            );
            Some(&self[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // And it actually moved something (overwhelmingly likely).
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_spans_the_slice() {
        let mut rng = StdRng::seed_from_u64(22);
        let items = [10u64, 20, 30, 40, 50];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*items.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), items.len());
        let empty: [u64; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
