//! Distributions and range sampling.

use crate::Rng;
use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution per type: uniform over all values for
/// integers and `bool`, uniform in `[0, 1)` for floats.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! standard_uint {
    ($($t:ty => $via:ident),+ $(,)?) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )+};
}

standard_uint! {
    u8 => next_u32,
    u16 => next_u32,
    u32 => next_u32,
    u64 => next_u64,
    usize => next_u64,
    i8 => next_u32,
    i16 => next_u32,
    i32 => next_u32,
    i64 => next_u64,
    isize => next_u64,
}

impl Distribution<u128> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types that can be drawn uniformly from a bounded span.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[low, high]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Uniformly samples `x` in `[0, span]` using Lemire-style widening
/// multiplication with rejection, over a `u64` working width.
fn uniform_u64_inclusive<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == u64::MAX {
        return rng.next_u64();
    }
    let n = span + 1;
    // Zone: largest multiple of n that fits in 2^64, minus 1.
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = (
            ((v as u128 * n as u128) >> 64) as u64,
            (v as u128 * n as u128) as u64,
        );
        if lo <= zone {
            return hi;
        }
    }
}

macro_rules! sample_uniform_uint {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as u64).wrapping_sub(low as u64);
                low.wrapping_add(uniform_u64_inclusive(rng, span) as $t)
            }
        }
    )+};
}

sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! sample_uniform_int {
    ($($t:ty : $ut:ty),+ $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as $ut).wrapping_sub(low as $ut) as u64;
                low.wrapping_add(uniform_u64_inclusive(rng, span) as $t)
            }
        }
    )+};
}

sample_uniform_int!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range: empty range");
        let unit: f64 = Standard.sample(&mut SampleRng(rng));
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range: empty range");
        let unit: f32 = Standard.sample(&mut SampleRng(rng));
        low + unit * (high - low)
    }
}

/// Adapter so `SampleUniform` impls can reuse [`Standard`] sampling on
/// an unsized `RngCore`.
struct SampleRng<'a, R: RngCore + ?Sized>(&'a mut R);

impl<R: RngCore + ?Sized> RngCore for SampleRng<'_, R> {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

/// Range-like arguments accepted by [`Rng::gen_range`](crate::Rng::gen_range).
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + HalfOpen> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        let high = self.end.predecessor_or_self();
        T::sample_inclusive(rng, self.start, high)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T>
where
    T: Copy,
{
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Maps a half-open upper bound to the inclusive one (`end - 1` for
/// integers, `end` itself for floats, where the unit draw is already
/// half-open).
pub trait HalfOpen {
    /// Returns the largest value strictly below `self` for integers, or
    /// `self` for floats.
    fn predecessor_or_self(self) -> Self;
}

macro_rules! half_open_int {
    ($($t:ty),+ $(,)?) => {$(
        impl HalfOpen for $t {
            #[inline]
            fn predecessor_or_self(self) -> Self {
                self - 1
            }
        }
    )+};
}

half_open_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl HalfOpen for f64 {
    #[inline]
    fn predecessor_or_self(self) -> Self {
        self
    }
}

impl HalfOpen for f32 {
    #[inline]
    fn predecessor_or_self(self) -> Self {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn uniform_rejects_out_of_zone() {
        let mut r = StdRng::seed_from_u64(11);
        // A span that does not divide 2^64: distribution must stay in bounds.
        for _ in 0..10_000 {
            let v = uniform_u64_inclusive(&mut r, 2);
            assert!(v <= 2);
        }
    }

    #[test]
    fn signed_ranges_work() {
        let mut r = StdRng::seed_from_u64(12);
        for _ in 0..1000 {
            let v: i64 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn full_u64_range_does_not_loop() {
        let mut r = StdRng::seed_from_u64(13);
        let _: u64 = r.gen_range(0..=u64::MAX);
    }
}
