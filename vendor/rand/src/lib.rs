//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in a hermetic container with no crates.io
//! access, so the external `rand` dependency is replaced (via a path
//! dependency in the workspace manifest) with this self-contained
//! implementation of exactly the API surface the workspace uses:
//!
//! - [`RngCore`] / [`SeedableRng`] / [`Rng`]
//! - [`rngs::StdRng`] — a ChaCha12-based generator (same algorithm
//!   family as upstream `StdRng`, though not bit-compatible with it)
//! - [`Rng::gen`], [`Rng::gen_bool`], [`Rng::gen_range`]
//! - [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`]
//!
//! Determinism is the property the simulator cares about: every stream
//! derives from an explicit seed, there is no global or thread-local
//! state, and the implementation is pure Rust `std`. Statistical
//! quality comes from ChaCha12, which is far stronger than the use
//! cases (loss draws, jitter, population sampling) require.

#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::{Distribution, SampleRange, Standard};

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type, a fixed-size byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanded into a full seed with
    /// SplitMix64 (the same construction upstream `rand_core` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing convenience methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a value sampled from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        // 53 random mantissa bits against the threshold.
        let v: f64 = self.gen();
        v < p
    }

    /// Returns a value uniformly distributed in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u16 = r.gen_range(0..4000);
            assert!(x < 4000);
            let y: u64 = r.gen_range(0..=5);
            assert!(y <= 5);
            let z: i32 = r.gen_range(-10..10);
            assert!((-10..10).contains(&z));
            let f: f64 = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[r.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn gen_bool_rates_are_sane() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut r = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 37];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut buf2 = [0u8; 37];
        StdRng::seed_from_u64(5).fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
    }
}
