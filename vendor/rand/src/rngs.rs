//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// Number of ChaCha double-rounds (ChaCha12, as upstream `StdRng` uses).
const DOUBLE_ROUNDS: usize = 6;

/// The standard deterministic generator: ChaCha12 with a 256-bit key.
///
/// Not bit-compatible with upstream `rand::rngs::StdRng` (block layout
/// and word extraction order differ), but the same algorithm family and
/// quality class. All workspace determinism properties (same seed ⇒
/// same stream, independent streams per seed) hold identically.
#[derive(Clone, Debug)]
pub struct StdRng {
    /// Key words (state words 4..12 of the ChaCha matrix).
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Buffered output block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "refill".
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl StdRng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865; // "expa"
        state[1] = 0x3320_646e; // "nd 3"
        state[2] = 0x7962_2d32; // "2-by"
        state[3] = 0x6b20_6574; // "te k"
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = state;
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_word().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        StdRng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_differ_and_stream_is_stable() {
        let mut r = StdRng::seed_from_u64(1);
        let first: Vec<u32> = (0..32).map(|_| r.next_u32()).collect();
        assert_ne!(&first[..16], &first[16..], "consecutive blocks differ");
        let mut r2 = StdRng::seed_from_u64(1);
        let again: Vec<u32> = (0..32).map(|_| r2.next_u32()).collect();
        assert_eq!(first, again);
    }

    #[test]
    fn clone_preserves_position() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..7 {
            r.next_u32();
        }
        let mut c = r.clone();
        assert_eq!(r.next_u64(), c.next_u64());
    }
}
