//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::Range;

/// Acceptable length specifications for [`vec`].
pub trait SizeRange {
    /// Draws a concrete length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        rng.inner().gen_range(self.start..self.end)
    }
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

/// A strategy producing `Vec`s whose elements come from `element` and
/// whose length is drawn from `size`.
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

/// Generates vectors of values from `element`, with length in `size`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;

    fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.sample_value(rng)).collect()
    }
}
