//! Test-execution plumbing: per-case RNGs and run configuration.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// How many cases each property test runs, etc.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Upstream defaults to 256; the simulator-heavy tests here are
        // expensive enough that 64 is the deliberate tier-1 budget.
        Config { cases: 64 }
    }
}

/// The RNG handed to strategies: deterministic per `(test name, case)`.
pub struct TestRng {
    rng: StdRng,
}

/// FNV-1a over a string, used to give each test its own seed space.
fn hash_name(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}

impl TestRng {
    /// The RNG for one case of one named test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        TestRng {
            rng: StdRng::seed_from_u64(hash_name(test_name) ^ (0x9e37_79b9 * (case as u64 + 1))),
        }
    }

    /// Access to the raw generator (used by strategy implementations).
    pub fn inner(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}
