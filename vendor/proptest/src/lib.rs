//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, implementing the strategy combinators and macros this
//! workspace's property tests use.
//!
//! Differences from upstream, deliberately accepted:
//!
//! - **No shrinking.** A failing case panics with the generated inputs
//!   in the message (every strategy value is `Debug`), but is not
//!   minimized.
//! - **Deterministic seeding.** Upstream seeds from OS entropy; this
//!   stand-in derives each case's seed from the test-function name and
//!   the case index, so failures reproduce bit-identically on every
//!   machine — the same discipline the simulator itself follows.
//!
//! Supported surface: [`prelude`] (`proptest!`, `prop_oneof!`,
//! `prop_assert!`, `prop_assert_eq!`, `any`, `Just`, `Strategy`,
//! `ProptestConfig`), range strategies for integers and floats, tuple
//! strategies up to arity 6, [`collection::vec`], and
//! [`Strategy::prop_map`] / [`Strategy::prop_filter`] /
//! [`Strategy::prop_flat_map`].

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, Just, Strategy};
pub use test_runner::{Config as ProptestConfig, TestRng};

/// The glob-import module, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn holds(x in 0u32..100, v in proptest::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl [$cfg] $($rest)*);
    };
    (@impl [$cfg:expr]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.cases {
                    let mut __proptest_rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(
                        let $pat = $crate::strategy::Strategy::sample_value(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl [$crate::test_runner::Config::default()] $($rest)*);
    };
}

/// Chooses uniformly between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( Box::new($strat) as Box<dyn $crate::strategy::Strategy<Value = _>> ),+
        ])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_stay_in_bounds(
            x in 5u16..10,
            v in crate::collection::vec(any::<u8>(), 2..6),
            f in 0.0f64..1.0,
        ) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn oneof_and_map_compose(
            y in prop_oneof![
                (0u32..10).prop_map(|v| v * 2),
                (100u32..110).prop_map(|v| v + 1),
            ],
        ) {
            prop_assert!(y < 20 && y % 2 == 0 || (101u32..111).contains(&y));
        }

        #[test]
        fn tuples_and_just(t in (any::<bool>(), Just(7u8), 1usize..4)) {
            prop_assert_eq!(t.1, 7);
            prop_assert!((1..4).contains(&t.2));
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let strat = crate::collection::vec(any::<u64>(), 0..8);
        let a: Vec<Vec<u64>> = (0..10)
            .map(|i| strat.sample_value(&mut crate::TestRng::for_case("det", i)))
            .collect();
        let b: Vec<Vec<u64>> = (0..10)
            .map(|i| strat.sample_value(&mut crate::TestRng::for_case("det", i)))
            .collect();
        assert_eq!(a, b);
        // Different names give different streams.
        let c = strat.sample_value(&mut crate::TestRng::for_case("other", 0));
        let d = strat.sample_value(&mut crate::TestRng::for_case("det", 0));
        assert!(a.len() == 10 && (c != d || a[0] != a[1] || a[1] != a[2]));
    }
}
