//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::distributions::{HalfOpen, SampleUniform};
use rand::{Rng, RngCore};
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generates one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred` (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            whence,
        }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<T: Debug, S: Strategy<Value = T> + ?Sized> Strategy for Box<S> {
    type Value = T;

    fn sample_value(&self, rng: &mut TestRng) -> T {
        (**self).sample_value(rng)
    }
}

impl<T: Debug, S: Strategy<Value = T> + ?Sized> Strategy for &S {
    type Value = T;

    fn sample_value(&self, rng: &mut TestRng) -> T {
        (**self).sample_value(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 candidates", self.whence);
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample_value(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample_value(rng)).sample_value(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: Debug> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut TestRng) -> T {
        let i = rng.inner().gen_range(0..self.options.len());
        self.options[i].sample_value(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! arbitrary_via_u64 {
    ($($t:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.inner().next_u64() as $t
            }
        }
    )+};
}

arbitrary_via_u64!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.inner().next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Finite values only, spanning sign and a wide magnitude range.
    fn arbitrary(rng: &mut TestRng) -> Self {
        let unit: f64 = rng.inner().gen();
        let exp = rng.inner().gen_range(-64i32..64);
        let sign = if rng.inner().gen_range(0u32..2) == 0 {
            1.0
        } else {
            -1.0
        };
        sign * unit * (exp as f64).exp2()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly ASCII, occasionally any scalar value.
        if rng.inner().gen_range(0u32..4) != 0 {
            rng.inner().gen_range(0x20u32..0x7f) as u8 as char
        } else {
            loop {
                if let Some(c) = char::from_u32(rng.inner().gen_range(0u32..=0x10_ffff)) {
                    return c;
                }
            }
        }
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

impl<T> Strategy for Range<T>
where
    T: Copy + PartialOrd + Debug + SampleUniform + HalfOpen,
{
    type Value = T;

    fn sample_value(&self, rng: &mut TestRng) -> T {
        assert!(self.start < self.end, "empty range strategy");
        T::sample_inclusive(rng.inner(), self.start, self.end.predecessor_or_self())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: Copy + PartialOrd + Debug + SampleUniform,
{
    type Value = T;

    fn sample_value(&self, rng: &mut TestRng) -> T {
        T::sample_inclusive(rng.inner(), *self.start(), *self.end())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample_value(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5),
);
